//! CI perf-regression gate over the checked-in BENCH_*.json trajectories.
//!
//! ```sh
//! cargo run --release -p bench-harness --bin perf_gate
//! ```
//!
//! * **BENCH_10 (E22, threaded injection)** — re-measures every recorded
//!   point on the current build and FAILS (exit 1) if any point's
//!   throughput regressed by more than `PERF_GATE_TOLERANCE` (default
//!   10%) against the checked-in trajectory, or if the widest point's p99
//!   exceeds 5× the single-producer p99 (the latency acceptance bound at
//!   constant offered load).
//! * **BENCH_7 (E19, scheduler scaling) and BENCH_9 (E21, recovery
//!   latency)** — validated to parse and reported in the same trajectory
//!   format (their numbers come from multi-minute simulations; the gate
//!   checks the artifacts are present and well-formed rather than
//!   re-running them).
//!
//! The recorded baselines were taken on the CI container class; the
//! tolerance absorbs same-class noise, and `PERF_GATE_TOLERANCE` can be
//! widened for a known hardware change (alongside re-recording the
//! baseline with the `threaded_injection` binary).

use bench_harness::threaded_injection::{json_numbers, measure_point};

fn read(path: &str) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf gate: cannot read {path}: {e} (baseline missing?)"))
}

fn main() {
    let tol: f64 = std::env::var("PERF_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);
    let mut failures: Vec<String> = Vec::new();

    // --- BENCH_10: re-measure and gate -------------------------------
    let baseline = read("BENCH_10.json");
    let producers = json_numbers(&baseline, "producers");
    let msgs_per_sec = json_numbers(&baseline, "msgs_per_sec");
    let total_msgs = json_numbers(&baseline, "total_msgs");
    assert!(
        !producers.is_empty() && producers.len() == msgs_per_sec.len(),
        "BENCH_10.json trajectory is malformed"
    );
    println!("perf gate: E22 threaded injection (tolerance {:.0}%)", tol * 100.0);
    let mut fresh_points = Vec::new();
    for (i, (&p, &base_rate)) in producers.iter().zip(&msgs_per_sec).enumerate() {
        let total = total_msgs.get(i).copied().unwrap_or(48_000.0) as u64;
        let fresh = measure_point(p as usize, total, 3);
        let ratio = fresh.msgs_per_sec / base_rate;
        let verdict = if ratio >= 1.0 - tol { "ok" } else { "REGRESSED" };
        println!(
            "  {:>2} producers: {:>9.0} msgs/s vs baseline {:>9.0} ({:+.1}%) [{verdict}]  p99 {} ns",
            p,
            fresh.msgs_per_sec,
            base_rate,
            (ratio - 1.0) * 100.0,
            fresh.p99_ns,
        );
        if ratio < 1.0 - tol {
            failures.push(format!(
                "{} producers: throughput {:.0} msgs/s is {:.1}% below the recorded {:.0}",
                p,
                fresh.msgs_per_sec,
                (1.0 - ratio) * 100.0,
                base_rate
            ));
        }
        fresh_points.push(fresh);
    }
    // Latency acceptance at constant offered load: the widest point's p99
    // must stay within 5x of the single-producer p99.
    if let (Some(base), Some(wide)) = (fresh_points.first(), fresh_points.last()) {
        let p99_ratio = wide.p99_ns as f64 / base.p99_ns.max(1) as f64;
        println!(
            "  p99 {}p/{}p = {:.2}x (bound 5x)",
            wide.producers, base.producers, p99_ratio
        );
        if p99_ratio > 5.0 {
            failures.push(format!(
                "p99 blew the 5x bound: {} ns at {} producers vs {} ns at {}",
                wide.p99_ns, wide.producers, base.p99_ns, base.producers
            ));
        }
    }

    // --- BENCH_7 / BENCH_9: artifact validation + trajectory report --
    let b7 = read("BENCH_7.json");
    let ranks = json_numbers(&b7, "ranks");
    let evps = json_numbers(&b7, "events_per_sec");
    if ranks.is_empty() || evps.is_empty() {
        failures.push("BENCH_7.json lost its scaling trajectory".into());
    } else {
        println!("perf gate: E19 scheduler scaling (recorded trajectory)");
        for (r, e) in ranks.iter().zip(&evps) {
            println!("  {:>5.0} ranks: {:>8.0} events/s", r, e);
        }
    }
    let b9 = read("BENCH_9.json");
    let wall = json_numbers(&b9, "wall_clock_s");
    let revoked = json_numbers(&b9, "revoked_epochs");
    if wall.is_empty() || revoked.is_empty() {
        failures.push("BENCH_9.json lost its recovery trajectory".into());
    } else {
        println!(
            "perf gate: E21 recovery (recorded: {:.2}s wall, {:.0} revoked epochs)",
            wall[0], revoked[0]
        );
    }

    if failures.is_empty() {
        println!("perf gate: PASS");
    } else {
        for f in &failures {
            eprintln!("perf gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
