//! # bench-harness — regenerating every table and figure of §4
//!
//! One function per experiment, returning structured data; the `src/bin`
//! binaries print the same rows/series the paper's figures plot. See
//! DESIGN.md §3 for the experiment↔figure index and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub mod experiments;
pub mod render;
pub mod threaded_injection;

pub use experiments::*;
