//! The experiments, one per paper figure/table.
//!
//! Conventions: the point-to-point testbed is [`Cluster::xeon_pair`]
//! (rail 0 = ConnectX IB, rail 1 = Myri-10G MX); the NAS testbed is
//! [`Cluster::grid5000_opteron`] (one IB rail).

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::stats::PingSeries;
use simnet::{Cluster, Placement, SimDuration};

use mpi_ch3::stack::{run_mpi, StackConfig};
use mpi_ch3::{MpiHandle, Src};
use nasbench::{run_nas, Class, Kernel, NasResult};
use netpipe::{run_sweep, NetpipeOptions};

/// Rail indices on the pt2pt testbed.
pub const RAIL_IB: usize = 0;
pub const RAIL_MX: usize = 1;

// ---------------------------------------------------------------------
// Fig. 4 — InfiniBand comparisons
// ---------------------------------------------------------------------

/// Fig. 4(a): small-message latency over IB for MVAPICH2, Open MPI,
/// MPICH2-NewMadeleine, and MPICH2-NewMadeleine with MPI_ANY_SOURCE.
pub fn fig4_latency(opts: &NetpipeOptions) -> Vec<PingSeries> {
    let cluster = Cluster::xeon_pair();
    let mut any = opts.clone();
    any.any_source = true;
    vec![
        run_sweep(&cluster, &baselines::mvapich2(RAIL_IB), opts, "MVAPICH2"),
        run_sweep(&cluster, &baselines::openmpi(RAIL_IB), opts, "Open MPI"),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            opts,
            "MPICH2:Nem:Nmad:IB",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            &any,
            "MPICH2:Nem:Nmad:IB w/AS",
        ),
    ]
}

/// Fig. 4(b): bandwidth over IB for the three stacks.
pub fn fig4_bandwidth(opts: &NetpipeOptions) -> Vec<PingSeries> {
    let cluster = Cluster::xeon_pair();
    vec![
        run_sweep(&cluster, &baselines::mvapich2(RAIL_IB), opts, "MVAPICH2"),
        run_sweep(&cluster, &baselines::openmpi(RAIL_IB), opts, "Open MPI"),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            opts,
            "MPICH2:Nem:Nmad:IB",
        ),
    ]
}

// ---------------------------------------------------------------------
// Fig. 5 — heterogeneous multirail
// ---------------------------------------------------------------------

/// Fig. 5: MX-only, IB-only and multirail MPICH2-NewMadeleine.
pub fn fig5(opts: &NetpipeOptions) -> Vec<PingSeries> {
    let cluster = Cluster::xeon_pair();
    vec![
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_MX, false),
            opts,
            "MPICH2:Nmad:MX",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            opts,
            "MPICH2:Nmad:IB",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad(false),
            opts,
            "MPICH2:Nmad:Multi-MX-IB",
        ),
    ]
}

// ---------------------------------------------------------------------
// Fig. 6 — PIOMan's raw overhead
// ---------------------------------------------------------------------

/// Fig. 6(a): shared-memory latency — Nemesis, Nemesis+PIOMan, Open MPI.
pub fn fig6_shm(opts: &NetpipeOptions) -> Vec<PingSeries> {
    let cluster = Cluster::xeon_pair();
    let mut shm = opts.clone();
    shm.same_node = true;
    vec![
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad(false),
            &shm,
            "MPICH2:Nemesis",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad(true),
            &shm,
            "MPICH2:Nemesis:PIOMan",
        ),
        run_sweep(&cluster, &baselines::openmpi(RAIL_IB), &shm, "Open MPI"),
    ]
}

/// Fig. 6(b): Myrinet MX latency — Open MPI PML/BTL, MPICH2-NewMadeleine,
/// and the PIOMan variant.
pub fn fig6_mx(opts: &NetpipeOptions) -> Vec<PingSeries> {
    let cluster = Cluster::xeon_pair();
    vec![
        run_sweep(
            &cluster,
            &baselines::openmpi_pml_mx(RAIL_MX),
            opts,
            "Open MPI:PML:MX",
        ),
        run_sweep(
            &cluster,
            &baselines::openmpi_btl_mx(RAIL_MX),
            opts,
            "Open MPI:BTL:MX",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_MX, false),
            opts,
            "MPICH2:Nem:Nmad:MX",
        ),
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_MX, true),
            opts,
            "MPICH2:Nem:Nmad:PIOM:MX",
        ),
    ]
}

// ---------------------------------------------------------------------
// Fig. 7 — overlapping communication with computation
// ---------------------------------------------------------------------

/// One bar of Fig. 7: the measured "sending time".
#[derive(Clone, Debug)]
pub struct OverlapPoint {
    pub stack: String,
    pub bytes: usize,
    pub sending_time_us: f64,
}

/// Measure the Fig. 7 protocol: `isend`, compute for `compute`, `wait`;
/// the peer acknowledges so the measurement covers full delivery.
pub fn sending_time(cfg: &StackConfig, bytes: usize, compute: SimDuration) -> f64 {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let out = Arc::new(Mutex::new(0.0));
    let o2 = Arc::clone(&out);
    run_mpi(
        &cluster,
        &placement,
        cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            let payload = vec![1u8; bytes];
            if mpi.rank() == 0 {
                // Warmup exchange.
                mpi.send(1, 1, &payload);
                mpi.recv(Src::Rank(1), 2);
                let t0 = mpi.now();
                let r = mpi.isend(1, 1, &payload);
                if compute > SimDuration::ZERO {
                    mpi.compute(compute);
                }
                mpi.wait(r);
                mpi.recv(Src::Rank(1), 2);
                *o2.lock() = (mpi.now() - t0).as_micros_f64();
            } else {
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 2, b"ack");
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 2, b"ack");
            }
        }),
    );
    let v = *out.lock();
    v
}

/// Fig. 7(a): eager messages (4 KB, 16 KB) over MX, 20 µs of computation.
pub fn fig7_eager() -> Vec<OverlapPoint> {
    let compute = SimDuration::micros(20);
    let sizes = [4 * 1024usize, 16 * 1024];
    let stacks: Vec<(String, StackConfig, SimDuration)> = vec![
        (
            "Reference (no computation)".into(),
            StackConfig::mpich2_nmad_rail(RAIL_MX, false),
            SimDuration::ZERO,
        ),
        (
            "MPICH2:Nem:NMad:MX".into(),
            StackConfig::mpich2_nmad_rail(RAIL_MX, false),
            compute,
        ),
        (
            "MPICH2:Nem:Nmad:PIOMan:MX".into(),
            StackConfig::mpich2_nmad_rail(RAIL_MX, true),
            compute,
        ),
        (
            "Open MPI:BTL:MX".into(),
            baselines::openmpi_btl_mx(RAIL_MX),
            compute,
        ),
        (
            "Open MPI:PML:MX".into(),
            baselines::openmpi_pml_mx(RAIL_MX),
            compute,
        ),
    ];
    let mut out = Vec::new();
    for (name, cfg, comp) in &stacks {
        for &bytes in &sizes {
            out.push(OverlapPoint {
                stack: name.clone(),
                bytes,
                sending_time_us: sending_time(cfg, bytes, *comp),
            });
        }
    }
    out
}

/// Fig. 7(b): rendezvous messages (16 KB – 1 MB) over IB, 400 µs of
/// computation.
pub fn fig7_rendezvous() -> Vec<OverlapPoint> {
    let compute = SimDuration::micros(400);
    let sizes = [16 * 1024usize, 64 * 1024, 256 * 1024, 1024 * 1024];
    let stacks: Vec<(String, StackConfig, SimDuration)> = vec![
        (
            "Reference (no computation)".into(),
            StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            SimDuration::ZERO,
        ),
        (
            "MPICH2:Nem:NMad:IB".into(),
            StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            compute,
        ),
        (
            "MPICH2:Nem:Nmad:PIOMan:IB".into(),
            StackConfig::mpich2_nmad_rail(RAIL_IB, true),
            compute,
        ),
        ("Open MPI".into(), baselines::openmpi(RAIL_IB), compute),
        ("MVAPICH2".into(), baselines::mvapich2(RAIL_IB), compute),
    ];
    let mut out = Vec::new();
    for (name, cfg, comp) in &stacks {
        for &bytes in &sizes {
            out.push(OverlapPoint {
                stack: name.clone(),
                bytes,
                sending_time_us: sending_time(cfg, bytes, *comp),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 8 — NAS parallel benchmarks
// ---------------------------------------------------------------------

/// The four stacks of Fig. 8, in the figure's legend order.
pub fn nas_stacks() -> Vec<StackConfig> {
    vec![
        baselines::mvapich2(0),
        baselines::openmpi(0),
        StackConfig::mpich2_nmad(false),
        StackConfig::mpich2_nmad(true),
    ]
}

/// Is this (stack, kernel, procs) cell published in Fig. 8? The paper's
/// PIOMan column is missing for 64 processes and for the MG and LU kernels
/// ("not yet available due to a problem in the current implementation that
/// leads to deadlocks"). Our implementation runs them fine; the figure
/// harness still omits the cells to match the published figure, and can
/// include them with `--full`.
pub fn published_in_fig8(stack_is_pioman: bool, kernel: Kernel, procs: usize) -> bool {
    if !stack_is_pioman {
        return true;
    }
    procs < 64 && !matches!(kernel, Kernel::MG | Kernel::LU)
}

/// Run one Fig. 8 panel: every kernel × every stack at `procs` processes.
/// Returns `(result, published)` pairs.
pub fn fig8_panel(
    class: Class,
    procs: usize,
    kernels: &[Kernel],
    full: bool,
) -> Vec<(NasResult, bool)> {
    let cluster = Cluster::grid5000_opteron();
    let mut out = Vec::new();
    for &kernel in kernels {
        for (i, stack) in nas_stacks().iter().enumerate() {
            let is_pioman = i == 3;
            let published = published_in_fig8(is_pioman, kernel, procs);
            if !published && !full {
                continue;
            }
            let r = run_nas(&cluster, stack, kernel, class, procs, None);
            out.push((r, published));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 2 ablation — nested vs bypassed rendezvous
// ---------------------------------------------------------------------

/// A row of the handshake ablation.
#[derive(Clone, Debug)]
pub struct HandshakeRow {
    pub bytes: usize,
    pub direct_us: f64,
    pub netmod_us: f64,
}

/// E10: measure one large transfer through the bypass path vs the legacy
/// netmod path (CH3 rendezvous nested around NewMadeleine's).
pub fn fig2_handshake(sizes: &[usize]) -> Vec<HandshakeRow> {
    sizes
        .iter()
        .map(|&bytes| HandshakeRow {
            bytes,
            direct_us: sending_time(
                &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
                bytes,
                SimDuration::ZERO,
            ),
            netmod_us: sending_time(
                &StackConfig::mpich2_nmad_netmod(RAIL_IB),
                bytes,
                SimDuration::ZERO,
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------
// E11 — the latency breakdown table of §4.1.1
// ---------------------------------------------------------------------

/// A row of the latency-breakdown table.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    pub layer: &'static str,
    pub paper_us: f64,
    pub measured_us: f64,
}

/// §4.1.1's narrated numbers: raw hardware 1.2 µs, NewMadeleine 1.8 µs,
/// MPICH2-NewMadeleine 2.1 µs, +0.3 µs with ANY_SOURCE.
pub fn latency_breakdown() -> Vec<BreakdownRow> {
    let cluster = Cluster::xeon_pair();
    let small = NetpipeOptions {
        sizes: vec![4],
        iters_small: 30,
        ..Default::default()
    };
    let raw_hw = cluster.rails[RAIL_IB].latency.as_micros_f64();
    let nmad_raw = {
        let mut cfg = StackConfig::mpich2_nmad_rail(RAIL_IB, false);
        cfg.costs = mpi_ch3::SoftwareCosts::nmad_raw();
        cfg.name = "NewMadeleine (raw)".into();
        run_sweep(&cluster, &cfg, &small, "nmad")
            .latency_at(4)
            .unwrap()
    };
    let full = run_sweep(
        &cluster,
        &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
        &small,
        "mpich2-nmad",
    )
    .latency_at(4)
    .unwrap();
    let with_as = {
        let mut o = small.clone();
        o.any_source = true;
        run_sweep(
            &cluster,
            &StackConfig::mpich2_nmad_rail(RAIL_IB, false),
            &o,
            "mpich2-nmad-as",
        )
        .latency_at(4)
        .unwrap()
    };
    vec![
        BreakdownRow {
            layer: "Hardware (IB Verbs, raw)",
            paper_us: 1.2,
            measured_us: raw_hw,
        },
        BreakdownRow {
            layer: "NewMadeleine",
            paper_us: 1.8,
            measured_us: nmad_raw,
        },
        BreakdownRow {
            layer: "MPICH2-NewMadeleine",
            paper_us: 2.1,
            measured_us: full,
        },
        BreakdownRow {
            layer: "MPICH2-NewMadeleine w/ ANY_SOURCE",
            paper_us: 2.4,
            measured_us: with_as,
        },
    ]
}
