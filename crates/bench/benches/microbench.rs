//! Criterion micro-benchmarks of the hot data structures (real wall-clock
//! performance, as opposed to the simulated-time figure harnesses):
//!
//! * the Nemesis lock-free cell queue (enqueue/dequeue cycle, single- and
//!   multi-producer),
//! * NewMadeleine's tag-matching engine,
//! * the strategy decision procedures (aggregation / multirail split),
//! * the sampling split solver,
//! * the DES event queue,
//! * a complete simulated ping-pong (events per second of the whole
//!   stack).

use std::collections::VecDeque;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use nemesis::{CellPool, NemQueue};
use nmad::matching::{GateId, MatchEngine, Unexpected};
use nmad::pack::{PacketWrapper, PwBody, PwId};
use nmad::sampling::{split_sizes, LinkProfile};
use nmad::sr::RecvReqId;
use nmad::{NmConfig, RailHealth, SendReqId, StrategyKind};
use mpi_ch3::{run_threaded, ThreadedConfig};
use simnet::event::{EventKind, EventQueue, HeapEventQueue};
use simnet::{BufOrigin, CopyMeter, NmBuf, SimDuration, SimTime};

fn nem_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("nemesis-queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("enqueue-dequeue-cycle", |b| {
        let (pool, mut handles) = CellPool::new(1, 4);
        let q = NemQueue::new();
        for h in handles.remove(0) {
            q.enqueue(h);
        }
        b.iter(|| {
            let h = q.dequeue(&pool).expect("cell");
            q.enqueue(h);
        });
    });
    g.bench_function("two-producer-contention", |b| {
        // Two OS threads hammering enqueue while the bench thread drains.
        let (pool, handles) = CellPool::new(3, 256);
        let q = Arc::new(NemQueue::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let free: Arc<crossbeam::queue::SegQueue<nemesis::CellHandle>> =
            Arc::new(crossbeam::queue::SegQueue::new());
        let mut producers = Vec::new();
        let mut it = handles.into_iter();
        let mine = it.next().unwrap();
        for hs in it {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            let free = Arc::clone(&free);
            for h in hs {
                free.push(h);
            }
            let f2 = Arc::clone(&free);
            producers.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    if let Some(h) = f2.pop() {
                        q.enqueue(h);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in mine {
            q.enqueue(h);
        }
        b.iter(|| {
            if let Some(h) = q.dequeue(&pool) {
                free.push(h);
            }
        });
        stop.store(true, std::sync::atomic::Ordering::Release);
        for p in producers {
            let _ = p.join();
        }
    });
    g.finish();
}

fn matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("nmad-matching");
    g.throughput(Throughput::Elements(1));
    g.bench_function("post-then-match", |b| {
        let mut m = MatchEngine::new();
        let mut seq = 0u64;
        b.iter(|| {
            m.post_recv(GateId(1), 7, RecvReqId(0));
            let hit = m.arrived(
                GateId(1),
                7,
                Unexpected::Eager {
                    seq,
                    data: NmBuf::default(),
                },
            );
            seq += 1;
            assert!(hit.is_some());
        });
    });
    g.bench_function("unexpected-then-post", |b| {
        let mut m = MatchEngine::new();
        let mut seq = 0u64;
        b.iter(|| {
            m.arrived(
                GateId(1),
                9,
                Unexpected::Eager {
                    seq,
                    data: NmBuf::default(),
                },
            );
            let hit = m.post_recv(GateId(1), 9, RecvReqId(0));
            seq += 1;
            assert!(hit.is_some());
        });
    });
    g.bench_function("probe-tag-100-gates", |b| {
        let mut m = MatchEngine::new();
        for gate in 0..100 {
            m.arrived(
                GateId(gate),
                gate as u64 % 10,
                Unexpected::Eager {
                    seq: 0,
                    data: NmBuf::default(),
                },
            );
        }
        b.iter(|| m.probe_tag(5));
    });
    g.finish();
}

fn eager_pw(id: u64, len: usize) -> PacketWrapper {
    PacketWrapper {
        id: PwId(id),
        dst: 1,
        body: PwBody::Eager {
            tag: 1,
            seq: id,
            send_req: SendReqId(id as u32),
        },
        data: NmBuf::from(vec![0u8; len]),
        enqueued_at: SimTime::ZERO,
    }
}

fn strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("nmad-strategy");
    let cfg = NmConfig::default();
    let rails = || {
        vec![
            nmad::strategy::RailState {
                idle: true,
                profile: LinkProfile {
                    latency: SimDuration::nanos(1200),
                    bandwidth_bps: 1.25e9,
                },
                health: RailHealth::Up,
                weight: 1.0,
            },
            nmad::strategy::RailState {
                idle: true,
                profile: LinkProfile {
                    latency: SimDuration::nanos(1500),
                    bandwidth_bps: 1.1e9,
                },
                health: RailHealth::Up,
                weight: 1.0,
            },
        ]
    };
    g.bench_function("aggreg-16-small", |b| {
        let mut s = nmad::strategy::make(StrategyKind::Aggreg);
        b.iter_batched(
            || {
                let pending: VecDeque<_> = (0..16).map(|i| eager_pw(i, 64)).collect();
                (pending, rails())
            },
            |(mut pending, mut rs)| s.try_and_commit(&cfg, &mut pending, &mut rs),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("split-4MB-two-rails", |b| {
        let mut s = nmad::strategy::make(StrategyKind::SplitBalanced);
        let payload = NmBuf::from(vec![0u8; 4 << 20]);
        b.iter_batched(
            || {
                let pw = PacketWrapper {
                    id: PwId(0),
                    dst: 1,
                    body: PwBody::Data {
                        rdv_id: 1,
                        offset: 0,
                    },
                    data: payload.share(),
                    enqueued_at: SimTime::ZERO,
                };
                (VecDeque::from(vec![pw]), rails())
            },
            |(mut pending, mut rs)| s.try_and_commit(&cfg, &mut pending, &mut rs),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn sampling(c: &mut Criterion) {
    c.bench_function("sampling-split-solve", |b| {
        let profiles = [
            LinkProfile {
                latency: SimDuration::nanos(1200),
                bandwidth_bps: 1.25e9,
            },
            LinkProfile {
                latency: SimDuration::nanos(1500),
                bandwidth_bps: 1.1e9,
            },
        ];
        b.iter(|| split_sizes(std::hint::black_box(8 << 20), &profiles));
    });
}

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet-events");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push-pop", |b| {
        let mut q = EventQueue::new();
        // Keep a standing population so the queue has realistic depth.
        for i in 0..1000u64 {
            q.push(SimTime(i * 10), EventKind::Call(Box::new(|_| {})));
        }
        let mut t = 10_000u64;
        b.iter(|| {
            q.push(SimTime(t), EventKind::Call(Box::new(|_| {})));
            t += 7;
            q.pop()
        });
    });
    // The pre-calendar-queue baseline, same access pattern — the delta is
    // the scheduler headline in BENCH_7.json.
    g.bench_function("push-pop-heap-baseline", |b| {
        let mut q = HeapEventQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime(i * 10), EventKind::Call(Box::new(|_| {})));
        }
        let mut t = 10_000u64;
        b.iter(|| {
            q.push(SimTime(t), EventKind::Call(Box::new(|_| {})));
            t += 7;
            q.pop()
        });
    });
    // Deep standing population (4096 events, the 4096-rank shape): where
    // the bucketed layout pays off over the single binary heap.
    for (name, deep) in [("push-pop-deep-4096", false), ("push-pop-deep-4096-heap", true)] {
        g.bench_function(name, |b| {
            if deep {
                let mut q = HeapEventQueue::new();
                for i in 0..4096u64 {
                    q.push(SimTime(i * 10), EventKind::Call(Box::new(|_| {})));
                }
                let mut t = 41_000u64;
                b.iter(|| {
                    q.push(SimTime(t), EventKind::Call(Box::new(|_| {})));
                    t += 11;
                    q.pop()
                });
            } else {
                let mut q = EventQueue::new();
                for i in 0..4096u64 {
                    q.push(SimTime(i * 10), EventKind::Call(Box::new(|_| {})));
                }
                let mut t = 41_000u64;
                b.iter(|| {
                    q.push(SimTime(t), EventKind::Call(Box::new(|_| {})));
                    t += 11;
                    q.pop()
                });
            }
        });
    }
    g.finish();
}

fn full_stack_pingpong(c: &mut Criterion) {
    use mpi_ch3::stack::{run_mpi, StackConfig};
    use mpi_ch3::{MpiHandle, Src};
    use simnet::{Cluster, Placement};
    let mut g = c.benchmark_group("full-stack");
    g.sample_size(10);
    g.bench_function("pingpong-job-100x64B", |b| {
        let cluster = Cluster::xeon_pair();
        let placement = Placement::one_per_node(2, &cluster);
        let cfg = StackConfig::mpich2_nmad(false);
        b.iter(|| {
            run_mpi(
                &cluster,
                &placement,
                &cfg,
                2,
                Arc::new(|mpi: MpiHandle| {
                    let buf = [0u8; 64];
                    if mpi.rank() == 0 {
                        for _ in 0..100 {
                            mpi.send(1, 1, &buf);
                            mpi.recv(Src::Rank(1), 1);
                        }
                    } else {
                        for _ in 0..100 {
                            mpi.recv(Src::Rank(0), 1);
                            mpi.send(0, 1, &buf);
                        }
                    }
                }),
            )
        });
    });
    g.finish();
}

/// The eager-path hand-off chain, measured both ways: the pre-refactor
/// discipline cloned the payload at every layer boundary (app → CH3
/// packet → NewMadeleine wrapper → wire), the NmBuf discipline pays one
/// metered boundary copy and shares the allocation from there on. Same
/// four hand-offs, real wall-clock cost of the copies the CopyMeter
/// merely counts.
fn copy_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy-path");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        let payload = vec![0xA5u8; size];
        let label = |k: &str| format!("{k}-{}KB", size / 1024);
        let p = payload.clone();
        g.bench_function(&label("clone-per-layer"), move |b| {
            // black_box every hand-off so the optimizer cannot elide the
            // intermediate copies it would otherwise see as dead.
            b.iter(|| {
                let app = std::hint::black_box(std::hint::black_box(&p).to_vec()); // app → MPI
                let ch3 = std::hint::black_box(app.clone()); // MPI → CH3 packet
                let nm = std::hint::black_box(ch3.clone()); // CH3 → nmad wrapper
                let wire = std::hint::black_box(nm.clone()); // wrapper → wire
                std::hint::black_box(wire.len())
            });
        });
        let p = payload.clone();
        g.bench_function(&label("share-per-layer"), move |b| {
            let meter = CopyMeter::new();
            b.iter(|| {
                // One metered boundary copy…
                let app = std::hint::black_box(NmBuf::copied_from_slice(
                    std::hint::black_box(&p[..]),
                    BufOrigin::App,
                    &meter,
                ));
                // …then every hand-off is a refcount bump.
                let ch3 = std::hint::black_box(app.share());
                let nm = std::hint::black_box(ch3.share());
                let wire = std::hint::black_box(nm.slice(..));
                std::hint::black_box(wire.len())
            });
        });
    }
    g.finish();
}

fn threaded_injection(c: &mut Criterion) {
    // The real-thread hot path end to end: producers fill + CRC-seal
    // cells, the per-VC consumers verify and tag-match them through the
    // sharded engine, with flow control armed. One "element" = one
    // delivered message. The recorded trajectory (BENCH_10.json) and the
    // CI perf gate use the larger standalone harness; this group gives
    // criterion-grade per-message numbers for quick A/B work.
    const MSGS: u64 = 4_000;
    let mut g = c.benchmark_group("threaded-injection");
    g.sample_size(10);
    for producers in [1usize, 4, 16] {
        let cfg = ThreadedConfig {
            producers,
            vcs: 4,
            window: (64 / producers).max(2),
            msgs_per_producer: MSGS / producers as u64,
            payload_bytes: 256,
            rdv_every: 8,
            eager_credits: 32,
        };
        g.throughput(Throughput::Elements(cfg.msgs_per_producer * producers as u64));
        let id = format!("{producers}-producers");
        g.bench_function(&id, |b| {
            b.iter(|| {
                let r = run_threaded(cfg);
                assert_eq!(r.fifo_violations, 0);
                r.total_msgs
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    nem_queue,
    matching,
    strategies,
    sampling,
    event_queue,
    full_stack_pingpong,
    copy_path,
    threaded_injection
);
criterion_main!(benches);
