//! The shared-memory channel: fragmentation, reassembly, backpressure and
//! the intra-node timing model.
//!
//! One [`ShmDomain`] exists per node and is shared by all ranks placed on
//! it. Each rank gets an endpoint holding its *receive queue*, *free queue*
//! (both [`crate::queue::NemQueue`]s over the node's cell pool), a PIOMan
//! [`Mailbox`], a pending-send list for backpressure when free cells run
//! out, and reassembly state.
//!
//! ## Timing model
//!
//! Each sender has a serial "copy pipe": fragment `i` occupies the pipe for
//! `len_i / copy_bw` and becomes visible to the receiver `latency` after its
//! copy completes. This preserves per-sender FIFO delivery (the queue's
//! ordering guarantee) while modelling memcpy bandwidth and the base
//! cache-coherence latency. Per-cell CPU costs on either side
//! ([`ShmModel::send_overhead`], [`ShmModel::recv_overhead`]) are charged by
//! the MPI layer on the rank's own clock.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{BufOrigin, CopyMeter, NmBuf, Scheduler, SimDuration, SimTime};

use crate::cell::{CellHandle, CellPool, MsgHeader, MsgKind, CELL_PAYLOAD};
use crate::mailbox::Mailbox;
use crate::queue::NemQueue;

/// Calibrated shared-memory performance model.
#[derive(Clone, Copy, Debug)]
pub struct ShmModel {
    /// Base visibility latency of an enqueued cell (cache-coherence cost).
    pub latency: SimDuration,
    /// Per-cell CPU cost on the sending rank.
    pub send_overhead: SimDuration,
    /// Per-cell CPU cost on the receiving rank.
    pub recv_overhead: SimDuration,
    /// memcpy bandwidth through the shared region, bytes/second.
    pub copy_bw_bps: f64,
}

impl ShmModel {
    /// Calibrated so the Nemesis small-message shm latency lands at the
    /// ~0.2 µs of Fig. 6(a).
    pub fn xeon() -> ShmModel {
        ShmModel {
            latency: SimDuration::nanos(100),
            send_overhead: SimDuration::nanos(50),
            recv_overhead: SimDuration::nanos(50),
            copy_bw_bps: 5.0e9,
        }
    }

    /// Time the sender's copy pipe is occupied by a `len`-byte fragment.
    pub fn copy_time(&self, len: usize) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.copy_bw_bps)
    }

    /// CPU cost the sender pays per fragment (charged by the MPI layer).
    pub fn send_cpu_cost(&self, len: usize) -> SimDuration {
        self.send_overhead + self.copy_time(len)
    }

    /// CPU cost the receiver pays per fragment.
    pub fn recv_cpu_cost(&self, len: usize) -> SimDuration {
        self.recv_overhead + self.copy_time(len)
    }
}

/// A message queued for transmission while free cells are scarce.
struct PendingOut {
    dst_local: usize,
    header: MsgHeader,
    data: NmBuf,
    /// Bytes already pushed into cells.
    sent: usize,
    /// True once the First/Only fragment has gone out.
    started: bool,
}

/// Reassembly state for one in-flight inbound message.
struct Partial {
    header: MsgHeader,
    buf: Vec<u8>,
}

/// Incremental accounting of the bytes an endpoint has parked in
/// reassembly buffers — the shared-memory analogue of the network side's
/// unexpected-queue bytes. Maintained on every fragment, never by
/// scanning, so overload diagnostics can read it on hot paths.
#[derive(Default)]
struct ReasmAccount {
    cur: usize,
    hwm: usize,
}

impl ReasmAccount {
    fn charge(&mut self, len: usize) {
        self.cur += len;
        self.hwm = self.hwm.max(self.cur);
    }

    fn release(&mut self, len: usize) {
        debug_assert!(self.cur >= len, "reassembly byte accounting underflow");
        self.cur -= len;
    }
}

struct Endpoint {
    global_rank: usize,
    /// Observability handle stamped with this endpoint's global rank.
    rec: obs::RankRec,
    recv_queue: NemQueue,
    free_queue: NemQueue,
    mailbox: Mailbox,
    pending_out: Mutex<VecDeque<PendingOut>>,
    /// Inbound partial messages keyed by sender's global rank (per-sender
    /// FIFO makes one slot per sender sufficient).
    partials: Mutex<HashMap<usize, Partial>>,
    /// Earliest time this sender's copy pipe is free.
    pipe_free_at: Mutex<SimTime>,
    /// Per-destination sequence numbers.
    next_seq: Mutex<HashMap<usize, u64>>,
    /// Completed inbound messages ready for the upper layer.
    inbox: Mutex<VecDeque<(MsgHeader, NmBuf)>>,
    /// Bytes parked in reassembly buffers (and their high-water mark).
    reasm: Mutex<ReasmAccount>,
    /// Optional hook fired (on the engine) whenever a cell lands in this
    /// endpoint's receive queue — PIOMan uses it to react immediately.
    on_delivery: Mutex<Option<DeliveryHook>>,
}

/// Hook fired on the engine when a cell lands in an endpoint's receive
/// queue; the `usize` is the sending rank's local index.
pub type DeliveryHook = Arc<dyn Fn(&Scheduler, usize) + Send + Sync>;

/// The shared-memory domain of one node.
pub struct ShmDomain {
    pool: Arc<CellPool>,
    endpoints: Vec<Endpoint>,
    model: ShmModel,
    /// Stack-wide copy accounting; every cell copy-in/out is charged here.
    meter: Arc<CopyMeter>,
}

impl ShmDomain {
    /// Create a domain for the given co-located ranks (their *global* MPI
    /// ranks, in local order) with `cells_per_rank` cells each.
    pub fn new(global_ranks: &[usize], cells_per_rank: usize, model: ShmModel) -> Arc<ShmDomain> {
        Self::with_meter(global_ranks, cells_per_rank, model, CopyMeter::new())
    }

    /// Like [`ShmDomain::new`], charging copies to an existing stack meter.
    pub fn with_meter(
        global_ranks: &[usize],
        cells_per_rank: usize,
        model: ShmModel,
        meter: Arc<CopyMeter>,
    ) -> Arc<ShmDomain> {
        Self::with_instruments(global_ranks, cells_per_rank, model, meter, None)
    }

    /// Like [`ShmDomain::with_meter`], additionally emitting typed `obs`
    /// engine events (fragment copies, deliveries) through `recorder`.
    pub fn with_instruments(
        global_ranks: &[usize],
        cells_per_rank: usize,
        model: ShmModel,
        meter: Arc<CopyMeter>,
        recorder: Option<&Arc<obs::Recorder>>,
    ) -> Arc<ShmDomain> {
        let (pool, initial) = CellPool::new(global_ranks.len().max(1), cells_per_rank);
        let mut endpoints = Vec::with_capacity(global_ranks.len());
        for (local, &g) in global_ranks.iter().enumerate() {
            let ep = Endpoint {
                global_rank: g,
                rec: obs::RankRec::new(recorder, g as u32),
                recv_queue: NemQueue::new(),
                free_queue: NemQueue::new(),
                mailbox: Mailbox::new(),
                pending_out: Mutex::new(VecDeque::new()),
                partials: Mutex::new(HashMap::new()),
                pipe_free_at: Mutex::new(SimTime::ZERO),
                next_seq: Mutex::new(HashMap::new()),
                inbox: Mutex::new(VecDeque::new()),
                reasm: Mutex::new(ReasmAccount::default()),
                on_delivery: Mutex::new(None),
            };
            endpoints.push(ep);
            let _ = local;
        }
        let domain = Arc::new(ShmDomain {
            pool,
            endpoints,
            model,
            meter,
        });
        // Seed each endpoint's free queue with its initial cells.
        for (local, handles) in initial.into_iter().enumerate() {
            if local < domain.endpoints.len() {
                for h in handles {
                    domain.endpoints[local].free_queue.enqueue(h);
                }
            }
        }
        domain
    }

    /// The timing model in force.
    pub fn model(&self) -> &ShmModel {
        &self.model
    }

    /// The copy meter this domain charges.
    pub fn meter(&self) -> &Arc<CopyMeter> {
        &self.meter
    }

    /// Number of endpoints (co-located ranks).
    pub fn num_local(&self) -> usize {
        self.endpoints.len()
    }

    /// The PIOMan mailbox of a local endpoint.
    pub fn mailbox(&self, local: usize) -> Mailbox {
        Mailbox::clone(&self.endpoints[local].mailbox)
    }

    /// Install the delivery hook for `local` (PIOMan integration).
    pub fn set_delivery_hook(&self, local: usize, hook: DeliveryHook) {
        *self.endpoints[local].on_delivery.lock() = Some(hook);
    }

    /// Queue `data` for transmission from `src_local` to `dst_local` and
    /// start pumping fragments. Never blocks; backpressure is handled by
    /// the pending list. Returns the per-destination sequence number
    /// assigned to the message.
    pub fn send(
        self: &Arc<Self>,
        sched: &Scheduler,
        src_local: usize,
        dst_local: usize,
        mut header: MsgHeader,
        data: NmBuf,
    ) -> u64 {
        assert_ne!(src_local, dst_local, "self-send must be handled above");
        let seq = {
            let mut seqs = self.endpoints[src_local].next_seq.lock();
            let s = seqs.entry(dst_local).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        header.seq = seq;
        header.total_len = data.len();
        self.endpoints[src_local]
            .pending_out
            .lock()
            .push_back(PendingOut {
                dst_local,
                header,
                data,
                sent: 0,
                started: false,
            });
        self.pump(sched, src_local);
        seq
    }

    /// Move fragments of `src_local`'s pending messages into free cells and
    /// schedule their delivery. Called after sends and whenever one of this
    /// endpoint's cells is returned.
    pub fn pump(self: &Arc<Self>, sched: &Scheduler, src_local: usize) {
        let ep = &self.endpoints[src_local];
        loop {
            // Claim a free cell first; without one we cannot progress.
            let mut cell = match ep.free_queue.dequeue(&self.pool) {
                Some(c) => c,
                None => return,
            };
            let mut pending = ep.pending_out.lock();
            let front = match pending.front_mut() {
                Some(f) => f,
                None => {
                    // Nothing to send: give the cell back.
                    drop(pending);
                    ep.free_queue.enqueue(cell);
                    return;
                }
            };
            let remaining = front.data.len() - front.sent;
            let frag_len = remaining.min(CELL_PAYLOAD);
            let kind = match (front.started, front.sent + frag_len >= front.data.len()) {
                (false, true) => MsgKind::Only,
                (false, false) => MsgKind::First,
                (true, true) => MsgKind::Last,
                (true, false) => MsgKind::Middle,
            };
            cell.kind = kind;
            cell.header = front.header;
            cell.fill(&front.data[front.sent..front.sent + frag_len]);
            // The copy-in *into* the shared cell is one of the two
            // unavoidable shm copies (Fig. 2's copy-in/copy-out pair).
            self.meter.record_copy(frag_len);
            front.sent += frag_len;
            front.started = true;
            let dst_local = front.dst_local;
            let done = front.sent >= front.data.len();
            if done {
                pending.pop_front();
            }
            drop(pending);

            // Reserve the sender's serial copy pipe.
            let now = sched.now();
            ep.rec.engine(
                now.0,
                obs::EngineEvent::ShmFragCopy {
                    bytes: frag_len as u64,
                },
            );
            ep.rec.inc("shm.frag.copies", 1);
            ep.rec.observe("shm.frag.bytes", frag_len as u64);
            let (start, end) = {
                let mut free_at = ep.pipe_free_at.lock();
                let start = (*free_at).max(now);
                let end = start + self.model.copy_time(frag_len.max(1));
                *free_at = end;
                (start, end)
            };
            let visible_at = end + self.model.latency;
            let domain = Arc::clone(self);
            sched.schedule_at(visible_at, move |s| {
                domain.deliver(s, dst_local, cell);
            });
            let _ = start;
        }
    }

    /// Delivery event: the cell lands in the destination's receive queue.
    fn deliver(self: &Arc<Self>, sched: &Scheduler, dst_local: usize, cell: CellHandle) {
        let ep = &self.endpoints[dst_local];
        ep.rec.engine(
            sched.now().0,
            obs::EngineEvent::ShmDeliver {
                src_local: cell.origin as u32,
            },
        );
        ep.rec.inc("shm.cells.delivered", 1);
        ep.recv_queue.enqueue(cell);
        ep.mailbox.raise();
        let hook = ep.on_delivery.lock().as_ref().map(Arc::clone);
        if let Some(hook) = hook {
            hook(sched, dst_local);
        }
    }

    /// Drain one cell from `local`'s receive queue, if any, advancing
    /// reassembly. Returns a completed message when one finishes. The cell
    /// is returned to its origin's free queue and the origin's pump runs
    /// (it may have been starved of cells).
    pub fn poll(self: &Arc<Self>, sched: &Scheduler, local: usize) -> Option<(MsgHeader, NmBuf)> {
        // Return anything already assembled first.
        if let Some(done) = self.endpoints[local].inbox.lock().pop_front() {
            return Some(done);
        }
        loop {
            let ep = &self.endpoints[local];
            let cell = ep.recv_queue.dequeue(&self.pool)?;
            ep.mailbox.consume();
            let completed = self.absorb(local, &cell);
            // Recycle the cell to its origin and restart that origin's pump.
            let origin = cell.origin;
            self.endpoints[origin].free_queue.enqueue(cell);
            self.pump(sched, origin);
            if let Some(msg) = completed {
                return Some(msg);
            }
            // Fragment absorbed but message incomplete: keep draining.
        }
    }

    /// Fold one received fragment into reassembly state; returns the
    /// message if this fragment completed it.
    fn absorb(&self, local: usize, cell: &CellHandle) -> Option<(MsgHeader, NmBuf)> {
        let ep = &self.endpoints[local];
        match cell.kind {
            MsgKind::Only => {
                // Bytes pass straight through to the caller: charge so the
                // high-water mark sees them, release because nothing stays
                // parked.
                let mut reasm = ep.reasm.lock();
                reasm.charge(cell.payload().len());
                reasm.release(cell.payload().len());
                drop(reasm);
                Some((
                    cell.header,
                    // Copy-out of the shared cell into private storage (the
                    // second half of the copy-in/copy-out pair).
                    NmBuf::copied_from_slice(cell.payload(), BufOrigin::Nemesis, &self.meter),
                ))
            }
            MsgKind::First => {
                // Reassembly landing buffer: allocated once at the final
                // size, then each fragment is copied out of its cell.
                let mut buf = Vec::with_capacity(cell.header.total_len);
                buf.extend_from_slice(cell.payload());
                self.meter.record_alloc();
                self.meter.record_copy(cell.payload().len());
                ep.reasm.lock().charge(cell.payload().len());
                let mut partials = ep.partials.lock();
                let prev = partials.insert(
                    cell.header.src_rank,
                    Partial {
                        header: cell.header,
                        buf,
                    },
                );
                assert!(
                    prev.is_none(),
                    "interleaved fragments from rank {} — per-sender FIFO violated",
                    cell.header.src_rank
                );
                None
            }
            MsgKind::Middle | MsgKind::Last => {
                let mut partials = ep.partials.lock();
                let partial = partials
                    .get_mut(&cell.header.src_rank)
                    .expect("Middle/Last fragment without a First");
                partial.buf.extend_from_slice(cell.payload());
                self.meter.record_copy(cell.payload().len());
                ep.reasm.lock().charge(cell.payload().len());
                if cell.kind == MsgKind::Last {
                    let done = partials.remove(&cell.header.src_rank).unwrap();
                    ep.reasm.lock().release(done.buf.len());
                    assert_eq!(
                        done.buf.len(),
                        done.header.total_len,
                        "reassembled length mismatch"
                    );
                    // Freezing the landing buffer into an NmBuf is
                    // zero-copy (Vec -> refcounted storage handoff); the
                    // allocation was already charged at the First fragment.
                    Some((
                        done.header,
                        NmBuf::adopt(done.buf.into(), BufOrigin::Nemesis, &self.meter),
                    ))
                } else {
                    None
                }
            }
        }
    }

    /// Does `local` have anything to poll? (Mailbox hint — may be stale.)
    pub fn has_incoming(&self, local: usize) -> bool {
        let ep = &self.endpoints[local];
        ep.mailbox.pending() > 0
            || !ep.recv_queue.is_empty_hint()
            || !ep.inbox.lock().is_empty()
    }

    /// Global rank of a local endpoint.
    pub fn global_rank(&self, local: usize) -> usize {
        self.endpoints[local].global_rank
    }

    /// Bytes `local` currently has parked in reassembly buffers.
    pub fn reassembly_bytes(&self, local: usize) -> usize {
        self.endpoints[local].reasm.lock().cur
    }

    /// High-water mark of [`ShmDomain::reassembly_bytes`] — peak inbound
    /// buffering this endpoint ever saw (overload diagnostics).
    pub fn reassembly_hwm(&self, local: usize) -> usize {
        self.endpoints[local].reasm.lock().hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::{SimBuilder, SimTime};

    fn run_shm<T: Send + 'static>(
        f: impl FnOnce(&Scheduler, Arc<ShmDomain>) -> T + Send + 'static,
        check: impl FnOnce(T, SimTime) + Send + 'static,
    ) {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let domain = ShmDomain::new(&[0, 1], 8, ShmModel::xeon());
        let out = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        sched.schedule_at(SimTime::ZERO, move |s| {
            *out2.lock() = Some(f(s, domain));
        });
        let outcome = sim.run().unwrap();
        let v = out.lock().take().expect("setup did not run");
        check(v, outcome.final_time);
    }

    #[test]
    fn small_message_roundtrip() {
        run_shm(
            |s, d| {
                let hdr = MsgHeader {
                    src_rank: 0,
                    dst_rank: 1,
                    tag: 9,
                    ..Default::default()
                };
                d.send(s, 0, 1, hdr, NmBuf::from(Bytes::from_static(b"ping")));
                d
            },
            |d, final_time| {
                // Delivery happened during the run; poll it now.
                let sim = SimBuilder::new().build();
                let sched = sim.scheduler();
                let (hdr, data) = d.poll(&sched, 1).expect("message should be there");
                assert_eq!(hdr.tag, 9);
                assert_eq!(&data[..], b"ping");
                assert!(d.poll(&sched, 1).is_none());
                // 4 bytes: copy ~0.8ns -> 0ns? copy_time(4) = 0.8ns -> 1ns
                // (rounded); visible at ~latency.
                assert!(final_time >= SimTime(100));
            },
        );
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let payload = Bytes::from(
            (0..(2 * CELL_PAYLOAD + 1234))
                .map(|i| (i % 251) as u8)
                .collect::<Vec<u8>>(),
        );
        let expect = payload.slice(..); // zero-copy view shared with the send
        run_shm(
            move |s, d| {
                let hdr = MsgHeader {
                    src_rank: 0,
                    dst_rank: 1,
                    tag: 5,
                    ..Default::default()
                };
                d.send(s, 0, 1, hdr, NmBuf::from(payload));
                d
            },
            move |d, _| {
                let sim = SimBuilder::new().build();
                let sched = sim.scheduler();
                let (hdr, data) = d.poll(&sched, 1).expect("assembled message");
                assert_eq!(hdr.total_len, expect.len());
                assert_eq!(&data[..], &expect[..]);
            },
        );
    }

    #[test]
    fn backpressure_recycles_cells() {
        // 3 cells per rank but a message needing 5 fragments: the sender
        // stalls until the receiver polls (returning cells) — here delivery
        // events alone can't finish it, so we poll from a rank thread.
        let payload: Vec<u8> = vec![7u8; 5 * CELL_PAYLOAD];
        let expect_len = payload.len();
        let mut sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 3, ShmModel::xeon());
        let d2 = Arc::clone(&domain);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            let hdr = MsgHeader {
                src_rank: 0,
                dst_rank: 1,
                ..Default::default()
            };
            d2.send(s, 0, 1, hdr, NmBuf::from(payload));
        });
        let got = Arc::new(Mutex::new(None));
        let got2 = Arc::clone(&got);
        let d3 = Arc::clone(&domain);
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            loop {
                if let Some((hdr, data)) = d3.poll(&sched, 1) {
                    *got2.lock() = Some((hdr, data));
                    return;
                }
                ctx.advance(SimDuration::nanos(200));
            }
        });
        sim.run().unwrap();
        let (hdr, data) = got.lock().take().expect("message must complete");
        assert_eq!(hdr.total_len, expect_len);
        assert_eq!(data.len(), expect_len);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn per_sender_fifo_order() {
        // Two messages 0->1 must arrive in send order even though the first
        // is much larger.
        let big = vec![1u8; CELL_PAYLOAD];
        let mut sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 8, ShmModel::xeon());
        let d2 = Arc::clone(&domain);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            let mk = |tag| MsgHeader {
                src_rank: 0,
                dst_rank: 1,
                tag,
                ..Default::default()
            };
            d2.send(s, 0, 1, mk(1), NmBuf::from(big));
            d2.send(s, 0, 1, mk(2), NmBuf::from(Bytes::from_static(b"small")));
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let d3 = Arc::clone(&domain);
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            while o2.lock().len() < 2 {
                if let Some((hdr, _)) = d3.poll(&sched, 1) {
                    o2.lock().push(hdr.tag);
                } else {
                    ctx.advance(SimDuration::nanos(100));
                }
            }
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![1, 2]);
    }

    #[test]
    fn mailbox_counts_deliveries() {
        let mut sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 8, ShmModel::xeon());
        let mb = domain.mailbox(1);
        let d2 = Arc::clone(&domain);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            for _ in 0..3 {
                d2.send(
                    s,
                    0,
                    1,
                    MsgHeader::default(),
                    NmBuf::from(Bytes::from_static(b"m")),
                );
            }
        });
        let d3 = Arc::clone(&domain);
        let mb2 = Mailbox::clone(&mb);
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            // Wait until all three cells landed.
            while mb2.total() < 3 {
                ctx.advance(SimDuration::nanos(100));
            }
            assert!(d3.has_incoming(1));
            let mut n = 0;
            while d3.poll(&sched, 1).is_some() {
                n += 1;
            }
            assert_eq!(n, 3);
            assert_eq!(mb2.pending(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn reassembly_accounting_tracks_fragments() {
        // A 2.5-cell message parks bytes during reassembly; once polled the
        // current count returns to zero but the high-water mark keeps the
        // peak.
        let len = 2 * CELL_PAYLOAD + 100;
        let payload: Vec<u8> = vec![3u8; len];
        let mut sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 8, ShmModel::xeon());
        let d2 = Arc::clone(&domain);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            let hdr = MsgHeader {
                src_rank: 0,
                dst_rank: 1,
                ..Default::default()
            };
            d2.send(s, 0, 1, hdr, NmBuf::from(payload));
        });
        let d3 = Arc::clone(&domain);
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            loop {
                if d3.poll(&sched, 1).is_some() {
                    break;
                }
                ctx.advance(SimDuration::nanos(200));
            }
            assert_eq!(d3.reassembly_bytes(1), 0, "nothing parked after poll");
            assert_eq!(d3.reassembly_hwm(1), len, "peak saw the whole message");
            assert_eq!(d3.reassembly_hwm(0), 0, "sender buffered nothing");
        });
        sim.run().unwrap();
    }

    #[test]
    fn delivery_hook_fires() {
        let sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 8, ShmModel::xeon());
        let hits = Arc::new(Mutex::new(0));
        let h2 = Arc::clone(&hits);
        domain.set_delivery_hook(
            1,
            Arc::new(move |_s, local| {
                assert_eq!(local, 1);
                *h2.lock() += 1;
            }),
        );
        let d2 = Arc::clone(&domain);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            d2.send(s, 0, 1, MsgHeader::default(), NmBuf::from(Bytes::from_static(b"x")));
        });
        sim.run().unwrap();
        assert_eq!(*hits.lock(), 1);
    }
}
