//! The Nemesis lock-free cell queue.
//!
//! This is the queue at the heart of the Nemesis channel (§2.1.1): it
//! "allows multiple processes to enqueue cells concurrently" while a single
//! owner dequeues. The algorithm is the original one from the Nemesis paper,
//! with the consumer-side **shadow head** that lets the dequeuer drain a
//! batch of cells while enqueuers keep appending through the shared
//! `head`/`tail` words:
//!
//! * `enqueue`: set `cell.next = NIL`, atomically swap `tail` to the new
//!   cell; if the previous tail was `NIL` the queue was empty and `head` is
//!   set, otherwise the previous tail's `next` is linked.
//! * `dequeue` (single consumer): take cells from the private shadow list;
//!   when it runs dry, claim the shared `head` (publishing `NIL` so
//!   enqueuers see an empty queue). If the dequeued cell looks like the last
//!   one, try to CAS `tail` from it to `NIL`; on failure an enqueuer is
//!   mid-append, so spin briefly until its `next` link becomes visible.
//!
//! The queue is a real multi-thread-safe structure — see the stress tests at
//! the bottom and in `tests/` — even though the simulator drives it from one
//! thread at a time.

use std::sync::Arc;

use crate::cell::{CellHandle, CellPool, NIL};
use crate::sync_shim::{spin_wait, AtomicUsize, Ordering, LINK_SPIN_CAP};

/// A lock-free multi-producer single-consumer queue of cells.
///
/// The single-consumer contract: only the owning rank may call
/// [`NemQueue::dequeue`]. This is the same contract as the shared-memory
/// original; a debug-mode guard trips if it is violated.
pub struct NemQueue {
    head: AtomicUsize,
    tail: AtomicUsize,
    /// Consumer-private list of already-claimed cells. Only the consumer
    /// touches it (Relaxed is sufficient); it lives here rather than in
    /// consumer-local storage so the queue is self-contained.
    shadow_head: AtomicUsize,
    /// Debug-only reentrancy/multi-consumer guard.
    #[cfg(debug_assertions)]
    consuming: std::sync::atomic::AtomicBool,
}

impl Default for NemQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl NemQueue {
    pub fn new() -> NemQueue {
        NemQueue {
            head: AtomicUsize::new(NIL),
            tail: AtomicUsize::new(NIL),
            shadow_head: AtomicUsize::new(NIL),
            #[cfg(debug_assertions)]
            consuming: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Enqueue a cell. Safe to call concurrently from any number of
    /// producers. Consumes the handle: ownership passes to the queue.
    pub fn enqueue(&self, cell: CellHandle) {
        let (pool, idx) = cell.into_parts();
        pool.next_of(idx).store(NIL, Ordering::Relaxed);
        // Release: the cell's data and its next=NIL must be visible to
        // whoever observes this tail/link update.
        let prev = self.tail.swap(idx, Ordering::AcqRel);
        if prev == NIL {
            self.head.store(idx, Ordering::Release);
        } else {
            pool.next_of(prev).store(idx, Ordering::Release);
        }
    }

    /// Dequeue a cell, if any. **Single consumer only.**
    ///
    /// Returns `None` when the queue is (momentarily) empty.
    pub fn dequeue(&self, pool: &Arc<CellPool>) -> Option<CellHandle> {
        #[cfg(debug_assertions)]
        let _guard = ConsumeGuard::enter(&self.consuming);

        let mut cell = self.shadow_head.load(Ordering::Relaxed);
        if cell == NIL {
            // Shadow list empty: claim the shared head (batch grab).
            if self.head.load(Ordering::Acquire) == NIL {
                return None;
            }
            let claimed = self.head.swap(NIL, Ordering::AcqRel);
            if claimed == NIL {
                // Raced with ourselves between load and swap — impossible
                // with a single consumer, but be defensive.
                return None;
            }
            cell = claimed;
        }
        // Advance the shadow head past `cell`.
        let next = pool.next_of(cell).load(Ordering::Acquire);
        if next != NIL {
            self.shadow_head.store(next, Ordering::Relaxed);
        } else {
            self.shadow_head.store(NIL, Ordering::Relaxed);
            // `cell` may be the last element; detach it from `tail`.
            if self
                .tail
                .compare_exchange(cell, NIL, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // An enqueuer swapped tail but hasn't linked next yet; its
                // store is imminent — spin until visible.
                let mut spins = 0u32;
                loop {
                    let n = pool.next_of(cell).load(Ordering::Acquire);
                    if n != NIL {
                        self.shadow_head.store(n, Ordering::Relaxed);
                        break;
                    }
                    spins += 1;
                    if spins > LINK_SPIN_CAP {
                        panic!("NemQueue::dequeue: enqueuer link never appeared");
                    }
                    spin_wait();
                }
            }
        }
        // SAFETY: the consumer has exclusively removed `cell` from the
        // queue; no other handle to it exists.
        Some(unsafe { pool.handle(cell) })
    }

    /// Cheap emptiness hint for pollers. May race with enqueuers: a `false`
    /// answer is authoritative ("definitely has something"), a `true` answer
    /// can be stale the moment it is returned.
    pub fn is_empty_hint(&self) -> bool {
        self.shadow_head.load(Ordering::Relaxed) == NIL
            && self.head.load(Ordering::Acquire) == NIL
    }
}

#[cfg(debug_assertions)]
struct ConsumeGuard<'a>(&'a std::sync::atomic::AtomicBool);

#[cfg(debug_assertions)]
impl<'a> ConsumeGuard<'a> {
    fn enter(flag: &'a std::sync::atomic::AtomicBool) -> Self {
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "NemQueue: concurrent dequeue detected — the queue is single-consumer"
        );
        ConsumeGuard(flag)
    }
}

#[cfg(debug_assertions)]
impl Drop for ConsumeGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellPool;

    #[test]
    fn fifo_single_thread() {
        let (pool, mut handles) = CellPool::new(1, 8);
        let q = NemQueue::new();
        assert!(q.is_empty_hint());
        assert!(q.dequeue(&pool).is_none());
        for (i, mut h) in handles.remove(0).into_iter().enumerate() {
            h.fill(&[i as u8]);
            q.enqueue(h);
        }
        assert!(!q.is_empty_hint());
        for i in 0..8 {
            let h = q.dequeue(&pool).expect("expected cell");
            assert_eq!(h.payload(), &[i as u8]);
        }
        assert!(q.dequeue(&pool).is_none());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let (pool, mut handles) = CellPool::new(1, 4);
        let q = NemQueue::new();
        let mut free: Vec<_> = handles.remove(0);
        let mut expect = 0u8;
        let mut next_val = 0u8;
        // Cycle cells through the queue many times.
        for _ in 0..100 {
            while let Some(mut h) = free.pop() {
                h.fill(&[next_val]);
                next_val = next_val.wrapping_add(1);
                q.enqueue(h);
            }
            while let Some(h) = q.dequeue(&pool) {
                assert_eq!(h.payload(), &[expect]);
                expect = expect.wrapping_add(1);
                free.push(h);
            }
        }
        assert_eq!(expect, next_val);
    }

    #[test]
    fn two_producers_one_consumer_stress() {
        // Real-thread stress: two producers hammer the queue while the
        // consumer drains, checking per-producer FIFO order.
        const PER_PRODUCER: usize = 20_000;
        let (pool, handles) = CellPool::new(2, 64);
        let q = Arc::new(NemQueue::new());
        let free: Vec<crossbeam::queue::SegQueue<crate::cell::CellHandle>> =
            vec![crossbeam::queue::SegQueue::new(), crossbeam::queue::SegQueue::new()];
        let free = Arc::new(free);
        for (r, hs) in handles.into_iter().enumerate() {
            for h in hs {
                free[r].push(h);
            }
        }
        let mut producers = Vec::new();
        for p in 0..2usize {
            let q = Arc::clone(&q);
            let free = Arc::clone(&free);
            producers.push(std::thread::spawn(move || {
                let mut sent = 0usize;
                while sent < PER_PRODUCER {
                    if let Some(mut h) = free[p].pop() {
                        h.header.src_rank = p;
                        h.header.seq = sent as u64;
                        q.enqueue(h);
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        let mut got = [0usize; 2];
        let mut received = 0usize;
        while received < 2 * PER_PRODUCER {
            if let Some(h) = q.dequeue(&pool) {
                let p = h.header.src_rank;
                assert_eq!(h.header.seq, got[p] as u64, "per-producer FIFO violated");
                got[p] += 1;
                received += 1;
                free[h.origin].push(h);
            } else {
                std::hint::spin_loop();
            }
        }
        for t in producers {
            t.join().unwrap();
        }
        assert_eq!(got, [PER_PRODUCER; 2]);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn empty_hint_tracks_state() {
        let (pool, mut handles) = CellPool::new(1, 1);
        let q = NemQueue::new();
        assert!(q.is_empty_hint());
        q.enqueue(handles[0].pop().unwrap());
        assert!(!q.is_empty_hint());
        let h = q.dequeue(&pool).unwrap();
        assert!(q.is_empty_hint());
        drop(h);
    }
}
