//! PIOMan mailboxes (§3.3.2).
//!
//! "A mailbox mechanism has been added to the shared memory subsystem: when
//! Nemesis needs to poll for an incoming message in shared memory, it
//! notifies PIOMan and specifies the address of a counter that is
//! incremented when the message is sent to the other side. PIOMan can thus
//! check the state of shared memory as it checks the state of networks."
//!
//! A [`Mailbox`] is exactly that counter: raised by the delivery side,
//! sampled and consumed by the progress engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared event counter. Cloning shares the counter.
#[derive(Clone, Default)]
pub struct Mailbox {
    raised: Arc<AtomicU64>,
    consumed: Arc<AtomicU64>,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Record one delivery. Called by the sending/delivery side.
    pub fn raise(&self) {
        self.raised.fetch_add(1, Ordering::Release);
    }

    /// Number of deliveries not yet consumed. A nonzero value tells the
    /// progress engine there is shared-memory work to do.
    pub fn pending(&self) -> u64 {
        let raised = self.raised.load(Ordering::Acquire);
        let consumed = self.consumed.load(Ordering::Relaxed);
        raised.saturating_sub(consumed)
    }

    /// Mark one delivery handled.
    pub fn consume(&self) {
        self.consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total deliveries ever recorded (diagnostics).
    pub fn total(&self) -> u64 {
        self.raised.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_consume() {
        let m = Mailbox::new();
        assert_eq!(m.pending(), 0);
        m.raise();
        m.raise();
        assert_eq!(m.pending(), 2);
        assert_eq!(m.total(), 2);
        m.consume();
        assert_eq!(m.pending(), 1);
        m.consume();
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn clones_share_state() {
        let m = Mailbox::new();
        let m2 = Mailbox::clone(&m);
        m.raise();
        assert_eq!(m2.pending(), 1);
        m2.consume();
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn consume_beyond_raised_saturates() {
        let m = Mailbox::new();
        m.consume();
        assert_eq!(m.pending(), 0);
        m.raise();
        assert_eq!(m.pending(), 0); // one raise already eaten by early consume
    }
}
