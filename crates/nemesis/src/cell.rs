//! Fixed-size message cells and the per-node cell arena.
//!
//! Nemesis moves intra-node messages through fixed-size *cells* that live in
//! a shared-memory region. In this reimplementation the region is a
//! [`CellPool`] shared (via `Arc`) by all ranks of a node. A cell is
//! identified by its index in the pool; queues link cells through atomic
//! `next` indices, and exclusive access to a cell's data is represented by a
//! [`CellHandle`] — an affine token that is created when a cell is dequeued
//! and consumed when the cell is enqueued somewhere else. This makes the
//! single-owner discipline of the original C code a compile-time property.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::sync_shim::AtomicUsize;

/// Payload bytes per cell. The original Nemesis uses 64 KB cells; we keep
/// that default (header is modelled separately, see [`MsgHeader`]).
pub const CELL_PAYLOAD: usize = 64 * 1024;

/// Sentinel index meaning "no cell".
pub(crate) const NIL: usize = usize::MAX;

/// What a fragment is part of. Messages larger than one cell are split into
/// a `First` fragment carrying the header, `Middle` fragments, and a `Last`
/// fragment (a single-cell message is `Only`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[derive(Default)]
pub enum MsgKind {
    #[default]
    Only,
    First,
    Middle,
    Last,
}


/// The message header carried by the first cell of every message. Models
/// the packed 64-byte header of the C implementation; kept as a struct since
/// all ranks share an address space here.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MsgHeader {
    /// Sender's global MPI rank.
    pub src_rank: usize,
    /// Receiver's global MPI rank.
    pub dst_rank: usize,
    /// MPI tag (already combined with the communicator context id by the
    /// upper layer).
    pub tag: u64,
    /// Total message payload size in bytes.
    pub total_len: usize,
    /// Per-(src,dst) sequence number, for reassembly and ordering checks.
    pub seq: u64,
    /// Upper-layer protocol discriminator (CH3 packet type).
    pub packet_type: u32,
    /// Protocol-specific auxiliary words (e.g. rendezvous id / offset);
    /// part of the modelled 64-byte header.
    pub aux: [u64; 2],
}

/// Contents of one cell.
///
/// The payload buffer is *lazily* sized: an untouched cell owns no heap
/// memory, and a used cell's buffer grows to the largest fragment it has
/// carried (bounded by [`CELL_PAYLOAD`]). The real Nemesis maps the full
/// 64 KB per cell up front, but at thousands of ranks that eager
/// `ranks × cells × 64 KB` footprint dominates job memory (~3 GB at 1024
/// ranks) while typical fragments touch a fraction of it — an idle job
/// must not pay for cells it never cycles.
pub struct CellData {
    /// Which rank's free queue this cell must be returned to.
    pub origin: usize,
    pub kind: MsgKind,
    pub header: MsgHeader,
    /// Number of valid bytes in `payload`.
    pub len: usize,
    payload: Vec<u8>,
}

impl CellData {
    fn new(origin: usize) -> CellData {
        CellData {
            origin,
            kind: MsgKind::Only,
            header: MsgHeader::default(),
            len: 0,
            payload: Vec::new(),
        }
    }

    /// The valid bytes of the fragment.
    pub fn payload(&self) -> &[u8] {
        &self.payload[..self.len]
    }

    /// Copy `src` into the cell, setting `len`.
    ///
    /// # Panics
    /// Panics if `src` exceeds the cell capacity.
    pub fn fill(&mut self, src: &[u8]) {
        assert!(src.len() <= CELL_PAYLOAD, "fragment exceeds cell capacity");
        self.payload.clear();
        self.payload.extend_from_slice(src);
        self.len = src.len();
    }
}

pub(crate) struct CellSlot {
    /// Link used by whatever queue currently holds the cell.
    pub(crate) next: AtomicUsize,
    data: UnsafeCell<CellData>,
}

/// A shared arena of cells, one per node. Indexable by all ranks of the
/// node; safe concurrent access is guaranteed by the [`CellHandle`]
/// ownership protocol.
pub struct CellPool {
    pub(crate) slots: Box<[CellSlot]>,
}

// SAFETY: `CellData` inside the `UnsafeCell` is only ever accessed through a
// `CellHandle`, of which at most one exists per index (they are created once
// at pool construction and thereafter only by `NemQueue::dequeue`, which
// takes ownership away from the enqueuer). The atomic `next` links are safe
// by construction.
unsafe impl Sync for CellPool {}
unsafe impl Send for CellPool {}

impl CellPool {
    /// Create a pool of `cells_per_rank * ranks` cells and hand each rank
    /// its initial set of free-cell handles. `origin` is recorded in each
    /// cell so receivers know whose free queue to return it to.
    pub fn new(ranks: usize, cells_per_rank: usize) -> (Arc<CellPool>, Vec<Vec<CellHandle>>) {
        assert!(ranks > 0 && cells_per_rank > 0);
        let total = ranks * cells_per_rank;
        let mut slots = Vec::with_capacity(total);
        for i in 0..total {
            let origin = i / cells_per_rank;
            slots.push(CellSlot {
                next: AtomicUsize::new(NIL),
                data: UnsafeCell::new(CellData::new(origin)),
            });
        }
        let pool = Arc::new(CellPool {
            slots: slots.into_boxed_slice(),
        });
        let mut per_rank = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let handles = (0..cells_per_rank)
                .map(|k| CellHandle {
                    pool: Arc::clone(&pool),
                    idx: r * cells_per_rank + k,
                })
                .collect();
            per_rank.push(handles);
        }
        (pool, per_rank)
    }

    /// Number of cells in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub(crate) fn next_of(&self, idx: usize) -> &AtomicUsize {
        &self.slots[idx].next
    }

    /// Reconstruct a handle for a dequeued index.
    ///
    /// # Safety
    /// The caller must have exclusive ownership of `idx` (i.e. it was just
    /// removed from a queue by the single consumer, or has never been
    /// enqueued since its last handle was consumed).
    pub(crate) unsafe fn handle(self: &Arc<Self>, idx: usize) -> CellHandle {
        CellHandle {
            pool: Arc::clone(self),
            idx,
        }
    }
}

/// Exclusive ownership of one cell. Deref gives access to the cell data;
/// enqueueing consumes the handle.
pub struct CellHandle {
    pool: Arc<CellPool>,
    idx: usize,
}

impl CellHandle {
    /// The cell's index in its pool.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Split the handle into pool + index, transferring the ownership
    /// obligation to the caller (used by the queue on enqueue).
    pub(crate) fn into_parts(self) -> (Arc<CellPool>, usize) {
        (self.pool, self.idx)
    }
}

impl std::ops::Deref for CellHandle {
    type Target = CellData;
    fn deref(&self) -> &CellData {
        // SAFETY: the handle is the unique owner of this cell (type
        // invariant), so no other reference to the data exists.
        unsafe { &*self.pool.slots[self.idx].data.get() }
    }
}

impl std::ops::DerefMut for CellHandle {
    fn deref_mut(&mut self) -> &mut CellData {
        // SAFETY: as above — unique ownership.
        unsafe { &mut *self.pool.slots[self.idx].data.get() }
    }
}

impl std::fmt::Debug for CellHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CellHandle(idx={}, origin={}, kind={:?}, len={})",
            self.idx, self.origin, self.kind, self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_hands_out_disjoint_cells() {
        let (pool, per_rank) = CellPool::new(3, 4);
        assert_eq!(pool.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for (r, handles) in per_rank.iter().enumerate() {
            assert_eq!(handles.len(), 4);
            for h in handles {
                assert!(seen.insert(h.index()), "duplicate cell handle");
                assert_eq!(h.origin, r);
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn fill_and_read_payload() {
        let (_pool, mut per_rank) = CellPool::new(1, 1);
        let mut h = per_rank[0].pop().unwrap();
        h.fill(b"hello nemesis");
        h.kind = MsgKind::Only;
        h.header.tag = 42;
        assert_eq!(h.payload(), b"hello nemesis");
        assert_eq!(h.header.tag, 42);
    }

    #[test]
    #[should_panic(expected = "exceeds cell capacity")]
    fn oversized_fill_panics() {
        let (_pool, mut per_rank) = CellPool::new(1, 1);
        let mut h = per_rank[0].pop().unwrap();
        let too_big = vec![0u8; CELL_PAYLOAD + 1];
        h.fill(&too_big);
    }

    #[test]
    fn handle_is_movable_across_threads() {
        let (_pool, mut per_rank) = CellPool::new(1, 1);
        let mut h = per_rank[0].pop().unwrap();
        h.fill(b"x");
        let h = std::thread::spawn(move || {
            assert_eq!(h.payload(), b"x");
            h
        })
        .join()
        .unwrap();
        assert_eq!(h.index(), 0);
    }
}
