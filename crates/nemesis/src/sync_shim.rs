//! Atomic-type facade: `std::sync::atomic` normally, `loom::sync::atomic`
//! when the crate is compiled with `--cfg loom` for model checking.
//!
//! The loom CI job builds with `RUSTFLAGS="--cfg loom"` and runs only the
//! loom test target; under that cfg every atomic the queue and cell pool
//! touch becomes a scheduling point of the offline model checker (see
//! `vendor/loom`), so `tests/loom_queue.rs` explores the interleavings of
//! the real enqueue/dequeue protocol rather than a mock of it.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};

/// One iteration of a bounded wait loop. Under loom this must be a
/// *voluntary* yield so the scheduler runs the thread we are waiting on;
/// natively it is a plain spin hint.
pub(crate) fn spin_wait() {
    #[cfg(loom)]
    loom::thread::yield_now();
    #[cfg(not(loom))]
    std::hint::spin_loop();
}

/// Bound on the "enqueuer mid-append" wait in `NemQueue::dequeue`. The
/// model checker counts scheduler steps, not cycles, so its bound is small;
/// natively the historical 1M-spin budget stands.
#[cfg(loom)]
pub(crate) const LINK_SPIN_CAP: u32 = 1_000;
#[cfg(not(loom))]
pub(crate) const LINK_SPIN_CAP: u32 = 1_000_000;
