//! The Nemesis network-module interface.
//!
//! §2.1.2: "Basically the four following routines are required to implement
//! a module: `net_module_init`, `net_module_send`, `net_module_poll` and
//! `net_module_finalize`. There is no `net_module_recv` routine since the
//! `net_module_poll` routine is called by the low-level progress engine in
//! Nemesis and is actually responsible to retrieve all incoming messages
//! from the network."
//!
//! [`NetModule`] is that contract. The classic (non-bypass) integration path
//! drives inter-node traffic through this trait and hands every inbound
//! message to the CH3 layer; the paper's contribution is precisely that the
//! NewMadeleine module *also* exposes richer entry points so CH3 can bypass
//! the Nemesis queue system (§3.1) — those live in the `nmad` crate.

use bytes::Bytes;
use simnet::Scheduler;

use crate::cell::MsgHeader;

/// An inbound network message surfaced by `poll`.
#[derive(Debug)]
pub struct NetInbound {
    pub header: MsgHeader,
    pub data: Bytes,
}

/// The four-routine Nemesis network-module contract.
pub trait NetModule: Send {
    /// `net_module_init`: bring the module up for `nranks` processes, this
    /// process being `my_rank`.
    fn init(&mut self, sched: &Scheduler, my_rank: usize, nranks: usize);

    /// `net_module_send`: transmit `data` with `header` to the (remote)
    /// rank given in `header.dst_rank`. Never blocks; completion is
    /// observed through `poll`.
    fn send(&mut self, sched: &Scheduler, header: MsgHeader, data: Bytes);

    /// `net_module_poll`: retrieve all incoming messages from the network.
    /// Called by the progress engine; returns any newly completed inbound
    /// messages.
    fn poll(&mut self, sched: &Scheduler) -> Vec<NetInbound>;

    /// `net_module_finalize`: tear the module down. Must be idempotent.
    fn finalize(&mut self, sched: &Scheduler);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A loopback module: everything sent comes back on the next poll.
    /// Exercises the trait contract shape.
    struct Loopback {
        initialized: bool,
        queue: VecDeque<NetInbound>,
    }

    impl NetModule for Loopback {
        fn init(&mut self, _s: &Scheduler, _me: usize, _n: usize) {
            self.initialized = true;
        }
        fn send(&mut self, _s: &Scheduler, header: MsgHeader, data: Bytes) {
            assert!(self.initialized, "send before init");
            self.queue.push_back(NetInbound { header, data });
        }
        fn poll(&mut self, _s: &Scheduler) -> Vec<NetInbound> {
            self.queue.drain(..).collect()
        }
        fn finalize(&mut self, _s: &Scheduler) {
            self.initialized = false;
        }
    }

    #[test]
    fn trait_contract_roundtrip() {
        let sim = simnet::SimBuilder::new().build();
        let sched = sim.scheduler();
        let mut m = Loopback {
            initialized: false,
            queue: VecDeque::new(),
        };
        m.init(&sched, 0, 2);
        let hdr = MsgHeader {
            src_rank: 0,
            dst_rank: 1,
            tag: 3,
            ..Default::default()
        };
        m.send(&sched, hdr, Bytes::from_static(b"abc"));
        m.send(&sched, hdr, Bytes::from_static(b"def"));
        let got = m.poll(&sched);
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0].data[..], b"abc");
        assert_eq!(&got[1].data[..], b"def");
        assert!(m.poll(&sched).is_empty());
        m.finalize(&sched);
        m.finalize(&sched); // idempotent
    }
}
