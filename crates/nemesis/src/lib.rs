//! # nemesis — intra-node communication subsystem
//!
//! A reimplementation of the MPICH2 *Nemesis* communication channel
//! (Buntinas, Mercier, Gropp — the paper's reference [5]) to the level of
//! detail the NewMadeleine integration paper depends on:
//!
//! * **Fixed-size message cells** held in a per-node arena ([`cell`]).
//! * **Lock-free queues** of cells — each process owns one *free queue*
//!   (its own cells, returned by receivers) and one *receive queue* (cells
//!   other processes enqueue for it). The queues allow multiple concurrent
//!   enqueuers and a single dequeuer, exactly the original algorithm with a
//!   consumer-side *shadow head* ([`queue`]).
//! * **The shared-memory channel** ([`channel`]): message fragmentation
//!   into cells, reassembly, pending-send backpressure, and the timing model
//!   used by the simulator.
//! * **The network-module interface** ([`netmod`]): the four-routine
//!   `init`/`send`/`poll`/`finalize` contract modules implement (§2.1.2).
//! * **PIOMan mailboxes** ([`mailbox`]): the counter-based notification
//!   scheme added so PIOMan can check shared-memory state the way it checks
//!   networks (§3.3.2).
//!
//! The queues are real, thread-safe, lock-free data structures (verified by
//! multi-threaded stress tests), even though the simulator only exercises
//! them from one thread at a time; this is the substrate an actual
//! shared-memory port would keep.

// Data-path crate: every payload clone must be a metered zero-copy share
// (`NmBuf::share`/`slice`) or carry an ownership-constraint comment.
#![warn(clippy::redundant_clone)]

pub mod cell;
pub mod channel;
pub mod mailbox;
pub mod netmod;
pub mod queue;
pub(crate) mod sync_shim;

pub use cell::{CellData, CellHandle, CellPool, MsgHeader, MsgKind, CELL_PAYLOAD};
pub use channel::{ShmDomain, ShmModel};
pub use mailbox::Mailbox;
pub use netmod::NetModule;
pub use queue::NemQueue;
