//! Property-based tests of the lock-free cell queue against a reference
//! model, plus a heavier multi-producer stress test.

use std::sync::Arc;

use nemesis::{CellPool, NemQueue};
use proptest::prelude::*;

/// A scripted single-threaded interleaving of enqueues and dequeues must
/// behave exactly like a VecDeque.
#[derive(Clone, Debug)]
enum Op {
    Enqueue(u8),
    Dequeue,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=255).prop_map(Op::Enqueue),
        Just(Op::Dequeue),
    ]
}

proptest! {
    #[test]
    fn queue_matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let (pool, mut handles) = CellPool::new(1, 256);
        let mut free: Vec<_> = handles.remove(0);
        let q = NemQueue::new();
        let mut model: std::collections::VecDeque<u8> = Default::default();
        for op in ops {
            match op {
                Op::Enqueue(v) => {
                    if let Some(mut h) = free.pop() {
                        h.fill(&[v]);
                        q.enqueue(h);
                        model.push_back(v);
                    }
                }
                Op::Dequeue => {
                    let got = q.dequeue(&pool);
                    let want = model.pop_front();
                    match (got, want) {
                        (Some(h), Some(v)) => {
                            prop_assert_eq!(h.payload(), &[v]);
                            free.push(h);
                        }
                        (None, None) => {}
                        (g, w) => prop_assert!(
                            false,
                            "divergence: queue {:?}, model {:?}",
                            g.map(|h| h.payload().to_vec()),
                            w
                        ),
                    }
                }
            }
        }
        // Drain both to the end.
        while let Some(h) = q.dequeue(&pool) {
            let v = model.pop_front().expect("model shorter than queue");
            prop_assert_eq!(h.payload(), &[v]);
            free.push(h);
        }
        prop_assert!(model.is_empty(), "queue shorter than model");
    }
}

#[test]
fn four_producers_heavy_stress() {
    const PER_PRODUCER: usize = 30_000;
    const PRODUCERS: usize = 4;
    let (pool, handles) = CellPool::new(PRODUCERS, 128);
    let q = Arc::new(NemQueue::new());
    let free: Arc<Vec<crossbeam::queue::SegQueue<nemesis::CellHandle>>> = Arc::new(
        (0..PRODUCERS)
            .map(|_| crossbeam::queue::SegQueue::new())
            .collect(),
    );
    for (r, hs) in handles.into_iter().enumerate() {
        for h in hs {
            free[r].push(h);
        }
    }
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let q = Arc::clone(&q);
        let free = Arc::clone(&free);
        producers.push(std::thread::spawn(move || {
            let mut sent = 0usize;
            while sent < PER_PRODUCER {
                if let Some(mut h) = free[p].pop() {
                    h.header.src_rank = p;
                    h.header.seq = sent as u64;
                    q.enqueue(h);
                    sent += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut next = [0u64; PRODUCERS];
    let mut received = 0usize;
    while received < PRODUCERS * PER_PRODUCER {
        if let Some(h) = q.dequeue(&pool) {
            let p = h.header.src_rank;
            assert_eq!(h.header.seq, next[p], "per-producer FIFO violated");
            next[p] += 1;
            received += 1;
            free[h.origin].push(h);
        } else {
            std::hint::spin_loop();
        }
    }
    for t in producers {
        t.join().unwrap();
    }
    assert!(next.iter().all(|&n| n == PER_PRODUCER as u64));
    assert!(q.dequeue(&pool).is_none());
}
