//! Property-based tests of the simulation engine: determinism, event
//! ordering, and clock monotonicity under arbitrary rank programs.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{SimBuilder, SimDuration, SimTime};

/// A tiny rank program: a list of compute durations with optional
/// same-time yields in between.
#[derive(Clone, Debug)]
struct Program {
    steps: Vec<(u64, bool)>, // (advance ns, yield afterwards?)
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec((0u64..10_000, any::<bool>()), 1..12)
        .prop_map(|steps| Program { steps })
}

/// Run a set of programs and return the (rank, step, time) trace.
fn run_trace(programs: &[Program]) -> Vec<(usize, usize, SimTime)> {
    let mut sim = SimBuilder::new().build();
    let trace = Arc::new(Mutex::new(Vec::new()));
    for (r, prog) in programs.iter().enumerate() {
        let trace = Arc::clone(&trace);
        let prog = prog.clone();
        sim.spawn_rank(format!("r{r}"), move |ctx| {
            for (i, &(ns, yield_after)) in prog.steps.iter().enumerate() {
                ctx.advance(SimDuration::nanos(ns));
                trace.lock().push((r, i, ctx.now()));
                if yield_after {
                    ctx.yield_now();
                }
            }
        });
    }
    sim.run().unwrap();
    let t = trace.lock().clone();
    t
}

proptest! {
    /// Identical inputs produce bit-identical traces (determinism is the
    /// foundation every experiment in this workspace rests on).
    #[test]
    fn runs_are_deterministic(programs in proptest::collection::vec(program_strategy(), 1..5)) {
        let a = run_trace(&programs);
        let b = run_trace(&programs);
        prop_assert_eq!(a, b);
    }

    /// Per-rank times are the prefix sums of its advances, regardless of
    /// interleaving with other ranks.
    #[test]
    fn per_rank_clocks_are_prefix_sums(programs in proptest::collection::vec(program_strategy(), 1..5)) {
        let trace = run_trace(&programs);
        for (r, prog) in programs.iter().enumerate() {
            let mut acc = 0u64;
            let mut step = 0usize;
            for &(rank, i, t) in &trace {
                if rank != r {
                    continue;
                }
                prop_assert_eq!(i, step, "steps out of order for rank {}", r);
                acc += prog.steps[i].0;
                prop_assert_eq!(t, SimTime(acc));
                step += 1;
            }
            prop_assert_eq!(step, prog.steps.len());
        }
    }

    /// The global trace is sorted by time (the engine never runs anything
    /// in the past).
    #[test]
    fn global_trace_is_time_sorted(programs in proptest::collection::vec(program_strategy(), 1..5)) {
        let trace = run_trace(&programs);
        for w in trace.windows(2) {
            prop_assert!(w[1].2 >= w[0].2, "clock went backwards: {:?} -> {:?}", w[0], w[1]);
        }
    }

    /// Scheduled callbacks fire at exactly their requested instants, in
    /// insertion order for ties.
    #[test]
    fn callbacks_fire_at_requested_times(delays in proptest::collection::vec(0u64..50_000, 1..40)) {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let fired = Arc::new(Mutex::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let fired = Arc::clone(&fired);
            sched.schedule_at(SimTime(d), move |s| {
                fired.lock().push((i, s.now()));
            });
        }
        sim.run().unwrap();
        let fired = fired.lock();
        prop_assert_eq!(fired.len(), delays.len());
        for &(i, t) in fired.iter() {
            prop_assert_eq!(t, SimTime(delays[i]));
        }
        // Stable for equal times: among entries with equal time, insertion
        // index increases.
        for w in fired.windows(2) {
            if w[0].1 == w[1].1 {
                prop_assert!(w[0].0 < w[1].0, "tie broken out of order");
            }
        }
    }
}
