//! The simulation event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so two events scheduled for the same instant fire in the
//! order they were scheduled. This makes every simulation run deterministic,
//! which the test suite and the figure-regeneration harnesses rely on.
//!
//! ## Calendar buckets
//!
//! [`EventQueue`] is a calendar queue: a ring of fixed-width time buckets
//! covering a sliding "near" horizon ahead of the dispatch cursor, plus an
//! overflow heap for events beyond it. Most simulation traffic (NIC
//! completions, poll backoffs, token handoffs) lands within a few
//! microseconds of *now*, so push and pop touch one small per-bucket heap
//! of O(events-per-bucket) instead of one global heap of O(all pending
//! events) — the difference between O(log 10) and O(log 100k) comparisons
//! per operation on a 4096-rank job. Events past the horizon go to the
//! overflow heap and migrate into the ring exactly once, as the cursor
//! advances toward them. The `(time, seq)` dispatch order is identical to
//! the old single-heap implementation ([`HeapEventQueue`], kept for
//! benchmarking): `(time, seq)` pairs are unique, each bucket covers a
//! disjoint time slice, and within a bucket the per-bucket heap orders by
//! the same key.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::{RankId, Scheduler};
use crate::time::SimTime;

/// A boxed event callback. Callbacks run on the engine thread and may
/// schedule further events or wake parked ranks through the [`Scheduler`].
pub type EventFn = Box<dyn FnOnce(&Scheduler) + Send>;

/// What an event does when it fires.
pub enum EventKind {
    /// Run a callback on the engine thread (NIC completions, PIOMan ltasks…).
    Call(EventFn),
    /// Hand the execution token to a parked rank thread.
    Wake(RankId),
}

impl std::fmt::Debug for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Call(_) => write!(f, "Call(..)"),
            EventKind::Wake(r) => write!(f, "Wake({r:?})"),
        }
    }
}

struct Entry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// log2 of the bucket width in simulated nanoseconds: 4.096 µs buckets.
/// Sized so one bucket covers a poll-backoff step or a small-message RTT
/// and the whole ring covers ~1 ms of simulated time.
const WIDTH_SHIFT: u32 = 12;
const WIDTH: u64 = 1 << WIDTH_SHIFT;
/// Ring size. `NBUCKETS × WIDTH` ≈ 1.05 ms of near horizon.
const NBUCKETS: usize = 256;

/// A deterministic calendar queue of simulation events.
pub struct EventQueue {
    /// The bucket ring. `near[i]` holds events whose bucket index
    /// (`time >> WIDTH_SHIFT`) is ≡ i (mod NBUCKETS) *and* lies within the
    /// near horizon `[cur_day, cur_day + NBUCKETS·WIDTH)`.
    near: Vec<BinaryHeap<Entry>>,
    /// Events at or beyond the near horizon, ordered by `(time, seq)`.
    far: BinaryHeap<Entry>,
    /// Number of events currently in the ring (all buckets).
    near_len: usize,
    /// Current bucket index (the cursor).
    cur: usize,
    /// Start time of bucket `cur`, always a multiple of `WIDTH`.
    cur_day: u64,
    next_seq: u64,
    popped: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            near: (0..NBUCKETS).map(|_| BinaryHeap::new()).collect(),
            far: BinaryHeap::new(),
            near_len: 0,
            cur: 0,
            cur_day: 0,
            next_seq: 0,
            popped: 0,
        }
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn horizon_end(&self) -> u64 {
        self.cur_day + (NBUCKETS as u64) * WIDTH
    }

    /// Insert an event at `time`. Returns the sequence number assigned to it.
    pub fn push(&mut self, time: SimTime, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Entry { time, seq, kind };
        let t = time.0;
        if t < self.horizon_end() {
            // A push below the cursor's day (engine forbids past-of-now,
            // but *now* can sit mid-bucket) still lands in the current
            // bucket; the per-bucket heap keeps it ordered correctly.
            let idx = if t < self.cur_day {
                self.cur
            } else {
                ((t >> WIDTH_SHIFT) as usize) % NBUCKETS
            };
            self.near[idx].push(e);
            self.near_len += 1;
        } else {
            self.far.push(e);
        }
        seq
    }

    /// Move `cur` onto the bucket containing `t` without scanning the
    /// ring day-by-day (used when the whole ring is empty).
    fn jump_cursor(&mut self, t: u64) {
        debug_assert_eq!(self.near_len, 0);
        self.cur_day = t & !(WIDTH - 1);
        self.cur = ((t >> WIDTH_SHIFT) as usize) % NBUCKETS;
    }

    /// Pull overflow events that now fall inside the near horizon into
    /// their ring buckets.
    fn migrate_far(&mut self) {
        let end = self.horizon_end();
        while let Some(e) = self.far.peek() {
            if e.time.0 >= end {
                break;
            }
            let e = self.far.pop().expect("peeked");
            let idx = ((e.time.0 >> WIDTH_SHIFT) as usize) % NBUCKETS;
            self.near[idx].push(e);
            self.near_len += 1;
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        if self.near_len == 0 && self.far.is_empty() {
            return None;
        }
        loop {
            if let Some(e) = self.near[self.cur].pop() {
                self.near_len -= 1;
                self.popped += 1;
                return Some((e.time, e.kind));
            }
            if self.near_len == 0 {
                // Ring empty: jump straight to the earliest overflow event
                // instead of crawling the ring one day at a time.
                let t = self.far.peek().expect("queue non-empty").time.0;
                self.jump_cursor(t);
                self.migrate_far();
            } else {
                // Advance one bucket. The vacated bucket becomes the ring's
                // newest day slot, so overflow events for that day (and
                // only that day) migrate in now — each far event moves
                // exactly once.
                self.cur = (self.cur + 1) % NBUCKETS;
                self.cur_day += WIDTH;
                self.migrate_far();
            }
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.near_len > 0 {
            // Buckets ahead of the cursor hold strictly later days, so the
            // first non-empty bucket in ring order holds the minimum; the
            // overflow heap is later than the whole ring by construction.
            for k in 0..NBUCKETS {
                let idx = (self.cur + k) % NBUCKETS;
                if let Some(e) = self.near[idx].peek() {
                    return Some(e.time);
                }
            }
            unreachable!("near_len > 0 but all buckets empty");
        }
        self.far.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

/// The pre-calendar event queue: one global binary heap. Kept as the
/// baseline for the scheduler microbenchmarks (BENCH_7 "heap vs bucketed");
/// the engine itself always runs on [`EventQueue`].
#[derive(Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    popped: u64,
}

impl HeapEventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, kind });
        seq
    }

    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.kind))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> EventKind {
        EventKind::Call(Box::new(|_| {}))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), call());
        q.push(SimTime(10), call());
        q.push(SimTime(20), call());
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), EventKind::Wake(RankId(0)));
        let b = q.push(SimTime(5), EventKind::Wake(RankId(1)));
        assert!(a < b);
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(0)),
            _ => panic!("wrong kind"),
        }
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(1)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), call());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn dispatched_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime(i), call());
        }
        for _ in 0..3 {
            q.pop();
        }
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn far_horizon_events_pop_in_order() {
        // Events far beyond the near horizon (≫ NBUCKETS·WIDTH) must still
        // come back in (time, seq) order after migrating through the ring.
        let mut q = EventQueue::new();
        let horizon = (NBUCKETS as u64) * WIDTH;
        let times = [
            0,
            WIDTH / 2,
            horizon - 1,
            horizon,
            horizon + 1,
            3 * horizon + 17,
            10 * horizon,
            10 * horizon, // same-time tie in the far heap
        ];
        for &t in times.iter().rev() {
            q.push(SimTime(t), call());
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn far_ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime(100 * (NBUCKETS as u64) * WIDTH);
        q.push(t, EventKind::Wake(RankId(0)));
        q.push(t, EventKind::Wake(RankId(1)));
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(0)),
            _ => panic!("wrong kind"),
        }
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(1)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Pops interleaved with pushes near and far of the moving cursor.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut step = |q: &mut EventQueue, base: u64| {
            for _ in 0..50 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let t = base + (rng >> 33) % (5 * (NBUCKETS as u64) * WIDTH);
                q.push(SimTime(t), call());
                expected.push(t);
            }
        };
        step(&mut q, 0);
        let mut popped = Vec::new();
        for _ in 0..25 {
            popped.push(q.pop().unwrap().0 .0);
        }
        // New pushes may not precede already-dispatched time.
        let now = *popped.last().unwrap();
        step(&mut q, now);
        while let Some((t, _)) = q.pop() {
            popped.push(t.0);
        }
        expected.sort_unstable();
        // Every expected time ≥ now must appear, in sorted order, and the
        // whole pop stream must be monotone.
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "pop stream not monotone");
        assert_eq!(popped.len(), expected.len());
    }

    #[test]
    fn matches_heap_baseline_exactly() {
        // Differential test: the calendar queue and the baseline heap must
        // dispatch identical (time, seq) streams for the same push stream.
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut rng: u64 = 42;
        let mut now = 0u64;
        let mut order_cal = Vec::new();
        let mut order_heap = Vec::new();
        for round in 0..200 {
            for _ in 0..8 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(round);
                let dt = (rng >> 40) % (3 * (NBUCKETS as u64) * WIDTH);
                cal.push(SimTime(now + dt), call());
                heap.push(SimTime(now + dt), call());
            }
            for _ in 0..6 {
                if let Some((t, _)) = cal.pop() {
                    order_cal.push((t, ()));
                    now = t.0;
                }
                if let Some((t, _)) = heap.pop() {
                    order_heap.push((t, ()));
                }
            }
        }
        while let Some((t, _)) = cal.pop() {
            order_cal.push((t, ()));
        }
        while let Some((t, _)) = heap.pop() {
            order_heap.push((t, ()));
        }
        assert_eq!(order_cal, order_heap);
    }
}
