//! The simulation event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so two events scheduled for the same instant fire in the
//! order they were scheduled. This makes every simulation run deterministic,
//! which the test suite and the figure-regeneration harnesses rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::{RankId, Scheduler};
use crate::time::SimTime;

/// A boxed event callback. Callbacks run on the engine thread and may
/// schedule further events or wake parked ranks through the [`Scheduler`].
pub type EventFn = Box<dyn FnOnce(&Scheduler) + Send>;

/// What an event does when it fires.
pub enum EventKind {
    /// Run a callback on the engine thread (NIC completions, PIOMan ltasks…).
    Call(EventFn),
    /// Hand the execution token to a parked rank thread.
    Wake(RankId),
}

impl std::fmt::Debug for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Call(_) => write!(f, "Call(..)"),
            EventKind::Wake(r) => write!(f, "Wake({r:?})"),
        }
    }
}

struct Entry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    popped: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an event at `time`. Returns the sequence number assigned to it.
    pub fn push(&mut self, time: SimTime, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, kind });
        seq
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.kind))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> EventKind {
        EventKind::Call(Box::new(|_| {}))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), call());
        q.push(SimTime(10), call());
        q.push(SimTime(20), call());
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), EventKind::Wake(RankId(0)));
        let b = q.push(SimTime(5), EventKind::Wake(RankId(1)));
        assert!(a < b);
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(0)),
            _ => panic!("wrong kind"),
        }
        match q.pop().unwrap().1 {
            EventKind::Wake(r) => assert_eq!(r, RankId(1)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), call());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn dispatched_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime(i), call());
        }
        for _ in 0..3 {
            q.pop();
        }
        assert_eq!(q.dispatched(), 3);
    }
}
