//! Cluster description and rank placement.
//!
//! The paper's two testbeds are expressed as [`Cluster`] values:
//!
//! * Point-to-point: two nodes, 2 × quad-core Xeons each, one IB NIC and one
//!   Myri-10G NIC ([`Cluster::xeon_pair`]).
//! * NAS: ten Grid'5000 nodes, 4 dual-core Opterons each, one IB NIC
//!   ([`Cluster::grid5000_opteron`]).
//!
//! A [`Placement`] maps MPI ranks onto nodes, deciding which pairs
//! communicate over shared memory (same node) and which over the network.

use crate::nic::NicModel;

/// Identifier of a physical node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A homogeneous cluster: `nodes` identical nodes, each with
/// `cores_per_node` cores and the same set of NICs.
#[derive(Clone, Debug)]
pub struct Cluster {
    pub nodes: usize,
    pub cores_per_node: usize,
    /// NIC models installed in every node (one fabric rail each).
    pub rails: Vec<NicModel>,
}

impl Cluster {
    pub fn new(nodes: usize, cores_per_node: usize, rails: Vec<NicModel>) -> Cluster {
        assert!(nodes > 0 && cores_per_node > 0);
        Cluster {
            nodes,
            cores_per_node,
            rails,
        }
    }

    /// The paper's point-to-point testbed (§4.1): two boxes of two quad-core
    /// 3.16 GHz Xeons, one Myri-10G NIC + one ConnectX IB NIC each.
    pub fn xeon_pair() -> Cluster {
        Cluster::new(
            2,
            8,
            vec![NicModel::connectx_ib(), NicModel::myri10g_mx()],
        )
    }

    /// The paper's NAS testbed (§4.2): ten Grid'5000 nodes, four dual-core
    /// 2.6 GHz Opteron 2218s each, one IB 10G NIC.
    pub fn grid5000_opteron() -> Cluster {
        Cluster::new(10, 8, vec![NicModel::connectx_ib()])
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// A mapping from MPI rank to node.
#[derive(Clone, Debug)]
pub struct Placement {
    node_of: Vec<NodeId>,
}

impl Placement {
    /// Build from an explicit rank→node table.
    pub fn explicit(node_of: Vec<NodeId>) -> Placement {
        Placement { node_of }
    }

    /// Block placement: fill each node's cores before moving to the next —
    /// MPICH2's default. With 16 ranks on 8-core nodes, ranks 0–7 land on
    /// node 0 and ranks 8–15 on node 1.
    pub fn block(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(
            nranks <= cluster.total_cores(),
            "{} ranks exceed {} cores",
            nranks,
            cluster.total_cores()
        );
        Placement {
            node_of: (0..nranks)
                .map(|r| NodeId(r / cluster.cores_per_node))
                .collect(),
        }
    }

    /// Round-robin placement: rank r on node r mod nodes. With at most one
    /// rank per node this gives the paper's "8 processes, one per node, no
    /// shared memory" NAS configuration.
    pub fn round_robin(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(
            nranks <= cluster.total_cores(),
            "{} ranks exceed {} cores",
            nranks,
            cluster.total_cores()
        );
        Placement {
            node_of: (0..nranks).map(|r| NodeId(r % cluster.nodes)).collect(),
        }
    }

    /// One rank per node (pt2pt benchmarks).
    pub fn one_per_node(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(nranks <= cluster.nodes, "more ranks than nodes");
        Placement {
            node_of: (0..nranks).map(NodeId).collect(),
        }
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.node_of[rank]
    }

    /// Number of placed ranks.
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Do two ranks share a node (and thus communicate over shared memory)?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// Ranks co-located on `node`, in rank order.
    pub fn ranks_on(&self, node: NodeId) -> Vec<usize> {
        (0..self.node_of.len())
            .filter(|&r| self.node_of[r] == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_nodes() {
        let c = Cluster::grid5000_opteron();
        let p = Placement::block(16, &c);
        assert_eq!(p.node_of(0), NodeId(0));
        assert_eq!(p.node_of(7), NodeId(0));
        assert_eq!(p.node_of(8), NodeId(1));
        assert_eq!(p.node_of(15), NodeId(1));
        assert!(p.same_node(0, 7));
        assert!(!p.same_node(7, 8));
    }

    #[test]
    fn round_robin_spreads_ranks() {
        let c = Cluster::grid5000_opteron();
        let p = Placement::round_robin(8, &c);
        for r in 0..8 {
            assert_eq!(p.node_of(r), NodeId(r));
        }
        // No pair shares a node — the "no shared memory" NAS case.
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert!(!p.same_node(a, b));
                }
            }
        }
    }

    #[test]
    fn ranks_on_lists_colocated() {
        let c = Cluster::new(2, 2, vec![]);
        let p = Placement::block(4, &c);
        assert_eq!(p.ranks_on(NodeId(0)), vec![0, 1]);
        assert_eq!(p.ranks_on(NodeId(1)), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn overfull_placement_rejected() {
        let c = Cluster::new(1, 2, vec![]);
        let _ = Placement::block(3, &c);
    }

    #[test]
    fn paper_testbeds() {
        let pt2pt = Cluster::xeon_pair();
        assert_eq!(pt2pt.nodes, 2);
        assert_eq!(pt2pt.rails.len(), 2);
        let nas = Cluster::grid5000_opteron();
        assert_eq!(nas.nodes, 10);
        assert_eq!(nas.total_cores(), 80);
        assert_eq!(nas.rails.len(), 1);
    }
}
