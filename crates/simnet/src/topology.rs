//! Cluster description and rank placement.
//!
//! The paper's two testbeds are expressed as [`Cluster`] values:
//!
//! * Point-to-point: two nodes, 2 × quad-core Xeons each, one IB NIC and one
//!   Myri-10G NIC ([`Cluster::xeon_pair`]).
//! * NAS: ten Grid'5000 nodes, 4 dual-core Opterons each, one IB NIC
//!   ([`Cluster::grid5000_opteron`]).
//!
//! A [`Placement`] maps MPI ranks onto nodes, deciding which pairs
//! communicate over shared memory (same node) and which over the network.

use crate::nic::NicModel;

/// Identifier of a physical node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A homogeneous cluster: `nodes` identical nodes, each with
/// `cores_per_node` cores and the same set of NICs.
#[derive(Clone, Debug)]
pub struct Cluster {
    pub nodes: usize,
    pub cores_per_node: usize,
    /// NIC models installed in every node (one fabric rail each).
    pub rails: Vec<NicModel>,
}

impl Cluster {
    pub fn new(nodes: usize, cores_per_node: usize, rails: Vec<NicModel>) -> Cluster {
        assert!(nodes > 0 && cores_per_node > 0);
        Cluster {
            nodes,
            cores_per_node,
            rails,
        }
    }

    /// The paper's point-to-point testbed (§4.1): two boxes of two quad-core
    /// 3.16 GHz Xeons, one Myri-10G NIC + one ConnectX IB NIC each.
    pub fn xeon_pair() -> Cluster {
        Cluster::new(
            2,
            8,
            vec![NicModel::connectx_ib(), NicModel::myri10g_mx()],
        )
    }

    /// The paper's NAS testbed (§4.2): ten Grid'5000 nodes, four dual-core
    /// 2.6 GHz Opteron 2218s each, one IB 10G NIC.
    pub fn grid5000_opteron() -> Cluster {
        Cluster::new(10, 8, vec![NicModel::connectx_ib()])
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// A mapping from MPI rank to node.
#[derive(Clone, Debug)]
pub struct Placement {
    node_of: Vec<NodeId>,
}

impl Placement {
    /// Build from an explicit rank→node table.
    pub fn explicit(node_of: Vec<NodeId>) -> Placement {
        Placement { node_of }
    }

    /// Block placement: fill each node's cores before moving to the next —
    /// MPICH2's default. With 16 ranks on 8-core nodes, ranks 0–7 land on
    /// node 0 and ranks 8–15 on node 1.
    pub fn block(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(
            nranks <= cluster.total_cores(),
            "{} ranks exceed {} cores",
            nranks,
            cluster.total_cores()
        );
        Placement {
            node_of: (0..nranks)
                .map(|r| NodeId(r / cluster.cores_per_node))
                .collect(),
        }
    }

    /// Round-robin placement: rank r on node r mod nodes. With at most one
    /// rank per node this gives the paper's "8 processes, one per node, no
    /// shared memory" NAS configuration.
    pub fn round_robin(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(
            nranks <= cluster.total_cores(),
            "{} ranks exceed {} cores",
            nranks,
            cluster.total_cores()
        );
        Placement {
            node_of: (0..nranks).map(|r| NodeId(r % cluster.nodes)).collect(),
        }
    }

    /// One rank per node (pt2pt benchmarks).
    pub fn one_per_node(nranks: usize, cluster: &Cluster) -> Placement {
        assert!(nranks <= cluster.nodes, "more ranks than nodes");
        Placement {
            node_of: (0..nranks).map(NodeId).collect(),
        }
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.node_of[rank]
    }

    /// Number of placed ranks.
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Do two ranks share a node (and thus communicate over shared memory)?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// Ranks co-located on `node`, in rank order.
    ///
    /// O(nranks) scan — fine for one-off queries; per-rank loops at scale
    /// should go through a shared [`TopoMap`] instead.
    pub fn ranks_on(&self, node: NodeId) -> Vec<usize> {
        (0..self.node_of.len())
            .filter(|&r| self.node_of[r] == node)
            .collect()
    }
}

/// Precomputed topology indices over a [`Placement`], built once per job and
/// shared (`Arc<TopoMap>`) by every rank.
///
/// All the per-rank queries the stack and the hierarchical collectives need
/// — node membership lists, local indices, node leaders — are O(1) lookups
/// here. Without this, each of P ranks doing its own `ranks_on` scan costs
/// O(P²) job-wide, which dominates setup at thousands of ranks.
#[derive(Debug)]
pub struct TopoMap {
    node_of: Vec<NodeId>,
    /// Co-located ranks per node id, rank order (empty for unpopulated ids).
    ranks_by_node: Vec<Vec<usize>>,
    /// Position of each rank within its node's membership list.
    local_index: Vec<usize>,
    /// Lowest rank on each node (`usize::MAX` for unpopulated ids).
    leader_of_node: Vec<usize>,
    /// Node leaders (lowest rank per populated node), ascending.
    leaders: Vec<usize>,
    /// For each rank: its position in `leaders` if it is one.
    leader_pos: Vec<Option<usize>>,
    populated_nodes: usize,
}

impl TopoMap {
    /// Build the indices with one pass over the placement.
    pub fn new(placement: &Placement) -> TopoMap {
        let nranks = placement.nranks();
        let max_node = (0..nranks)
            .map(|r| placement.node_of(r).0)
            .max()
            .map_or(0, |m| m + 1);
        let mut ranks_by_node: Vec<Vec<usize>> = vec![Vec::new(); max_node];
        let mut node_of = Vec::with_capacity(nranks);
        let mut local_index = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let n = placement.node_of(r);
            node_of.push(n);
            local_index.push(ranks_by_node[n.0].len());
            ranks_by_node[n.0].push(r);
        }
        let leader_of_node: Vec<usize> = ranks_by_node
            .iter()
            .map(|rs| rs.first().copied().unwrap_or(usize::MAX))
            .collect();
        let mut leaders: Vec<usize> = leader_of_node
            .iter()
            .copied()
            .filter(|&l| l != usize::MAX)
            .collect();
        leaders.sort_unstable();
        let mut leader_pos = vec![None; nranks];
        for (i, &l) in leaders.iter().enumerate() {
            leader_pos[l] = Some(i);
        }
        let populated_nodes = leaders.len();
        TopoMap {
            node_of,
            ranks_by_node,
            local_index,
            leader_of_node,
            leaders,
            leader_pos,
            populated_nodes,
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.node_of[rank]
    }

    /// Do two ranks share a node?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// Ranks co-located with `rank` (including itself), rank order.
    #[inline]
    pub fn node_ranks(&self, rank: usize) -> &[usize] {
        &self.ranks_by_node[self.node_of[rank].0]
    }

    /// Ranks on `node`, rank order (empty if unpopulated).
    #[inline]
    pub fn ranks_on(&self, node: NodeId) -> &[usize] {
        self.ranks_by_node
            .get(node.0)
            .map_or(&[], |v| v.as_slice())
    }

    /// Position of `rank` within [`TopoMap::node_ranks`].
    #[inline]
    pub fn local_index(&self, rank: usize) -> usize {
        self.local_index[rank]
    }

    /// The leader (lowest rank) of `rank`'s node.
    #[inline]
    pub fn leader_of(&self, rank: usize) -> usize {
        self.leader_of_node[self.node_of[rank].0]
    }

    /// Is `rank` its node's leader?
    #[inline]
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_pos[rank].is_some()
    }

    /// All node leaders, ascending rank order.
    #[inline]
    pub fn leaders(&self) -> &[usize] {
        &self.leaders
    }

    /// `rank`'s position among the leaders, if it is one.
    #[inline]
    pub fn leader_index(&self, rank: usize) -> Option<usize> {
        self.leader_pos[rank]
    }

    /// Number of nodes hosting at least one rank.
    #[inline]
    pub fn populated_nodes(&self) -> usize {
        self.populated_nodes
    }

    /// Does any pair of ranks span two nodes? (Equivalently: does any rank
    /// have a remote peer?) O(1), replacing the all-pairs scan.
    #[inline]
    pub fn multi_node(&self) -> bool {
        self.populated_nodes > 1
    }

    /// Largest per-node rank count (sizing hint for collective selection).
    pub fn max_node_ranks(&self) -> usize {
        self.ranks_by_node.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_nodes() {
        let c = Cluster::grid5000_opteron();
        let p = Placement::block(16, &c);
        assert_eq!(p.node_of(0), NodeId(0));
        assert_eq!(p.node_of(7), NodeId(0));
        assert_eq!(p.node_of(8), NodeId(1));
        assert_eq!(p.node_of(15), NodeId(1));
        assert!(p.same_node(0, 7));
        assert!(!p.same_node(7, 8));
    }

    #[test]
    fn round_robin_spreads_ranks() {
        let c = Cluster::grid5000_opteron();
        let p = Placement::round_robin(8, &c);
        for r in 0..8 {
            assert_eq!(p.node_of(r), NodeId(r));
        }
        // No pair shares a node — the "no shared memory" NAS case.
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert!(!p.same_node(a, b));
                }
            }
        }
    }

    #[test]
    fn ranks_on_lists_colocated() {
        let c = Cluster::new(2, 2, vec![]);
        let p = Placement::block(4, &c);
        assert_eq!(p.ranks_on(NodeId(0)), vec![0, 1]);
        assert_eq!(p.ranks_on(NodeId(1)), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn overfull_placement_rejected() {
        let c = Cluster::new(1, 2, vec![]);
        let _ = Placement::block(3, &c);
    }

    #[test]
    fn topo_map_indices_match_placement() {
        let c = Cluster::new(3, 4, vec![]);
        let p = Placement::block(9, &c); // 0-3 node0, 4-7 node1, 8 node2
        let t = TopoMap::new(&p);
        assert_eq!(t.nranks(), 9);
        assert_eq!(t.populated_nodes(), 3);
        assert!(t.multi_node());
        assert_eq!(t.node_ranks(5), &[4, 5, 6, 7]);
        assert_eq!(t.ranks_on(NodeId(2)), &[8]);
        assert_eq!(t.local_index(6), 2);
        assert_eq!(t.leader_of(7), 4);
        assert_eq!(t.leaders(), &[0, 4, 8]);
        assert!(t.is_leader(4) && !t.is_leader(5));
        assert_eq!(t.leader_index(8), Some(2));
        assert_eq!(t.leader_index(3), None);
        assert_eq!(t.max_node_ranks(), 4);
        for r in 0..9 {
            assert_eq!(t.node_of(r), p.node_of(r));
            assert_eq!(t.node_ranks(r)[t.local_index(r)], r);
        }
    }

    #[test]
    fn topo_map_single_node_is_not_multi() {
        let c = Cluster::new(1, 8, vec![]);
        let p = Placement::block(5, &c);
        let t = TopoMap::new(&p);
        assert!(!t.multi_node());
        assert_eq!(t.populated_nodes(), 1);
        assert_eq!(t.leaders(), &[0]);
    }

    #[test]
    fn paper_testbeds() {
        let pt2pt = Cluster::xeon_pair();
        assert_eq!(pt2pt.nodes, 2);
        assert_eq!(pt2pt.rails.len(), 2);
        let nas = Cluster::grid5000_opteron();
        assert_eq!(nas.nodes, 10);
        assert_eq!(nas.total_cores(), 80);
        assert_eq!(nas.rails.len(), 1);
    }
}
