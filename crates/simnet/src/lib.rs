//! # simnet — deterministic discrete-event cluster simulator
//!
//! This crate is the hardware substrate for the MPICH2-NewMadeleine
//! reproduction. The paper's evaluation ran on real InfiniBand (ConnectX,
//! Verbs) and Myrinet (Myri-10G, MX) NICs; neither is available here, so we
//! substitute a deterministic discrete-event simulation (DES) of the cluster:
//! nodes, cores, shared-memory domains, and NICs with calibrated
//! latency/bandwidth/registration-cost models.
//!
//! ## Execution model
//!
//! Simulated time is nanoseconds in a [`SimTime`]. The engine owns a priority
//! queue of events ordered by `(time, sequence)`; ties are broken by insertion
//! order, so runs are bit-for-bit reproducible.
//!
//! Each simulated *rank* (MPI process) runs its program on a dedicated OS
//! thread, but the simulation is logically single-threaded: a single
//! *execution token* is handed back and forth between the engine and rank
//! threads. A rank thread only executes while it holds the token; it returns
//! the token whenever it blocks (on a [`sem::SimSemaphore`], on
//! [`ctx::RankCtx::advance`], …). Background machinery (NIC DMA engines,
//! PIOMan ltasks) runs as plain event callbacks on the engine thread and never
//! needs a thread of its own.
//!
//! ## Module map
//!
//! * [`time`] — simulated clock arithmetic.
//! * [`event`] — the event queue.
//! * [`engine`] — the simulator proper: rank threads, token handoff, run loop,
//!   deadlock detection.
//! * [`ctx`] — the handle a rank program uses to interact with the simulation.
//! * [`sem`] — blocking primitives usable from rank code and completable from
//!   event callbacks (the paper's "semaphore-like primitives", §3.3.2).
//! * [`nic`] — NIC performance models and simulated NIC ports.
//! * [`fabric`] — rails (networks) connecting node NIC ports; message routing.
//! * [`fault`] — seeded, replayable fault injection (drop / duplicate /
//!   delay / reorder / NIC stalls / registration-cache misses).
//! * [`topology`] — cluster description and rank placement.
//! * [`copy`] — copy accounting ([`CopyMeter`]) and the lineage-tracked
//!   payload buffer ([`NmBuf`]) every layer above carries.
//! * [`stats`] — latency/bandwidth series helpers used by the harnesses.
//! * [`trace`] — optional structured event tracing for debugging.

// Data-path crates must not duplicate payloads by accident: a clone that
// the borrow checker would let us elide is a real memcpy on the hot path.
#![warn(clippy::redundant_clone)]

pub mod copy;
pub mod ctx;
pub mod engine;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod nic;
pub mod sem;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use copy::{BufOrigin, CopyMeter, CopySnapshot, NmBuf};
pub use ctx::RankCtx;
pub use engine::{RankId, Scheduler, Sim, SimBuilder, SimError, SimOutcome, WakeCell};
pub use fabric::{Delivery, Fabric, FabricOpts, RailId, WireMessage};
pub use fault::{
    FaultCounters, FaultPlan, FaultSpec, LinkFault, LinkWindow, NodeFault, NodeWindow,
    OverloadPlan, TransferFault,
};
pub use nic::{JitterModel, NicModel, NicPort};
pub use sem::SimSemaphore;
pub use time::{SimDuration, SimTime};
pub use topology::{Cluster, NodeId, Placement, TopoMap};
