//! Rails (networks) connecting node NIC ports, and message routing.
//!
//! A [`Fabric`] is the set of networks installed in a cluster. Each *rail*
//! is one network type (e.g. InfiniBand, Myrinet) with one [`NicPort`] per
//! node. Multirail configurations — the heterogeneous IB + MX setup of
//! Fig. 5 — are simply fabrics with more than one rail.
//!
//! The fabric is generic over the wire-message type `M`: each protocol stack
//! in this workspace (NewMadeleine, the baselines) defines its own wire
//! format and instantiates its own fabric per simulation run.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::Scheduler;
use crate::fault::FaultPlan;
use crate::nic::{CloneFn, DeliverFn, NicModel, NicPort, PortFault, Transfer};
use crate::time::SimTime;
use crate::topology::NodeId;

/// Index of a rail (network) within a fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RailId(pub usize);

/// A message arriving at a node.
pub struct Delivery<M> {
    pub src: NodeId,
    pub rail: RailId,
    pub msg: M,
    /// The wire corrupted the payload in flight (injected by the fault
    /// plan's `corrupt_pct`); an end-to-end checksum above must catch it.
    pub corrupted: bool,
}

/// Per-node handler invoked (on the engine thread) for every arriving
/// message.
pub type SinkFn<M> = Box<dyn FnMut(&Scheduler, Delivery<M>) + Send>;

/// Re-export of the NIC wire-size unit used across the workspace.
pub use crate::nic::MB;

/// Wire message marker trait alias (anything sendable works).
pub trait WireMessage: Send + 'static {}
impl<T: Send + 'static> WireMessage for T {}

struct RailPorts<M: Send + 'static> {
    model: Arc<NicModel>,
    ports: Vec<Arc<NicPort<M>>>,
}

/// Construction options: the master seed every per-port RNG (jitter) and
/// the fault plan derive from, named explicitly so every test names its
/// seed instead of relying on per-call defaults.
#[derive(Default)]
pub struct FabricOpts {
    /// Master seed mixed into every port's jitter RNG.
    pub seed: u64,
    /// Optional fault-injection plan (see [`crate::fault`]).
    pub fault: Option<Arc<FaultPlan>>,
    /// Optional observability recorder: every port emits `nic_tx` engine
    /// events (and NIC metrics) through it, stamped with the source node.
    pub recorder: Option<Arc<obs::Recorder>>,
}

/// All networks of a simulated cluster.
pub struct Fabric<M: Send + 'static> {
    rails: Vec<RailPorts<M>>,
    sinks: Arc<Mutex<Vec<Option<SinkFn<M>>>>>,
    nodes: usize,
    seed: u64,
    fault: Option<Arc<FaultPlan>>,
}

impl<M: Send + 'static> Fabric<M> {
    /// Build a fabric over `nodes` nodes with one rail per model in
    /// `rail_models` (every node gets a port on every rail). Seed 0, no
    /// faults; use [`Fabric::with_opts`] to name a seed or inject faults.
    pub fn new(nodes: usize, rail_models: Vec<NicModel>) -> Arc<Self> {
        Self::build(nodes, rail_models, FabricOpts::default(), None)
    }

    fn build(
        nodes: usize,
        rail_models: Vec<NicModel>,
        opts: FabricOpts,
        clone_fn: Option<CloneFn<M>>,
    ) -> Arc<Self> {
        assert!(nodes > 0, "fabric needs at least one node");
        assert!(!rail_models.is_empty(), "fabric needs at least one rail");
        let sinks: Arc<Mutex<Vec<Option<SinkFn<M>>>>> =
            Arc::new(Mutex::new((0..nodes).map(|_| None).collect()));
        let mut rails = Vec::with_capacity(rail_models.len());
        for (ri, model) in rail_models.into_iter().enumerate() {
            let model = Arc::new(model);
            let rail_id = RailId(ri);
            let mut ports = Vec::with_capacity(nodes);
            for n in 0..nodes {
                let sinks = Arc::clone(&sinks);
                let node_plan = opts.fault.clone();
                let deliver: DeliverFn<M> = Arc::new(move |sched, src, dst, msg, corrupted| {
                    // Scheduled node faults eat the frame at delivery time:
                    // a dead node neither sends nor receives, a hung node
                    // doesn't send. Sender-side DMA completion already
                    // fired, exactly like a wire drop.
                    if let Some(plan) = &node_plan {
                        if plan.node_suppressed(src.0, dst.0, sched.now()) {
                            return;
                        }
                    }
                    let mut sinks = sinks.lock();
                    let slot = sinks
                        .get_mut(dst.0)
                        .unwrap_or_else(|| panic!("delivery to unknown node {dst:?}"));
                    match slot {
                        Some(sink) => sink(
                            sched,
                            Delivery {
                                src,
                                rail: rail_id,
                                msg,
                                corrupted,
                            },
                        ),
                        None => panic!("delivery to node {dst:?} with no sink installed"),
                    }
                });
                let fault = opts.fault.as_ref().map(|plan| PortFault {
                    plan: Arc::clone(plan),
                    rail: ri,
                    clone: clone_fn.as_ref().map(Arc::clone),
                });
                ports.push(NicPort::new(
                    Arc::clone(&model),
                    NodeId(n),
                    ri,
                    opts.seed,
                    deliver,
                    fault,
                    obs::RankRec::new(opts.recorder.as_ref(), n as u32),
                ));
            }
            rails.push(RailPorts { model, ports });
        }
        Arc::new(Fabric {
            rails,
            sinks,
            nodes,
            seed: opts.seed,
            fault: opts.fault,
        })
    }

    /// The master seed this fabric was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Consult the fault plan: does a registration on `rail` miss the
    /// registration cache? Always `false` without a plan.
    pub fn reg_cache_miss(&self, rail: RailId) -> bool {
        self.fault
            .as_ref()
            .map(|p| p.reg_cache_miss(rail.0))
            .unwrap_or(false)
    }

    /// Per-rail `(messages, bytes)` transmitted, aggregated over every
    /// node's port — the fabric-side counters the determinism tests pin.
    pub fn rail_counters(&self) -> Vec<(u64, u64)> {
        self.rails
            .iter()
            .map(|r| {
                r.ports.iter().fold((0, 0), |(m, b), p| {
                    let (pm, pb) = p.counters();
                    (m + pm, b + pb)
                })
            })
            .collect()
    }

    /// Number of rails (networks).
    pub fn num_rails(&self) -> usize {
        self.rails.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The performance model of rail `rail`.
    pub fn model(&self, rail: RailId) -> &NicModel {
        &self.rails[rail.0].model
    }

    /// The NIC port of `node` on `rail`.
    pub fn port(&self, rail: RailId, node: NodeId) -> &Arc<NicPort<M>> {
        &self.rails[rail.0].ports[node.0]
    }

    /// Install the delivery handler for `node`. Must be done for every node
    /// that can receive before any traffic flows; replaces any previous
    /// sink.
    pub fn set_sink(&self, node: NodeId, sink: SinkFn<M>) {
        self.sinks.lock()[node.0] = Some(sink);
    }

    /// Convenience: submit a transfer on `rail` from `src`.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &self,
        sched: &Scheduler,
        rail: RailId,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
        on_sent: Option<crate::nic::SentHook>,
    ) {
        self.submit(sched, rail, src, dst, bytes, msg, on_sent, false);
    }

    /// Submit a latency-critical control frame on `rail`: it queues in the
    /// port's express lane, ahead of waiting bulk transfers (it still
    /// cannot preempt the transfer already on the wire). Keeps handshakes
    /// and acks reactive when a rail is saturated with rendezvous data.
    #[allow(clippy::too_many_arguments)]
    pub fn send_express(
        &self,
        sched: &Scheduler,
        rail: RailId,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
        on_sent: Option<crate::nic::SentHook>,
    ) {
        self.submit(sched, rail, src, dst, bytes, msg, on_sent, true);
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        sched: &Scheduler,
        rail: RailId,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
        on_sent: Option<crate::nic::SentHook>,
        priority: bool,
    ) {
        assert_ne!(src, dst, "fabric is inter-node only; use the shm channel");
        self.port(rail, src).submit(
            sched,
            Transfer {
                dst,
                bytes,
                msg,
                on_sent,
                priority,
            },
        );
    }

    /// Is `src`'s port on `rail` busy at `now`?
    pub fn rail_busy(&self, rail: RailId, src: NodeId, now: SimTime) -> bool {
        self.port(rail, src).busy(now)
    }
}

impl<M: Send + Clone + 'static> Fabric<M> {
    /// Build a fabric with an explicit seed and (optionally) a fault plan.
    /// Requires `M: Clone` so the fault layer can materialize duplicate
    /// deliveries.
    pub fn with_opts(nodes: usize, rail_models: Vec<NicModel>, opts: FabricOpts) -> Arc<Self> {
        // Ownership constraint: a duplicate-fault delivery must hand the
        // sink an independent wire message while the original is still in
        // flight, so the fault layer genuinely needs `Clone` here. For the
        // NewMadeleine wire type this bottoms out in `NmBuf::clone`, a
        // metered refcount share — no payload bytes are copied.
        let clone_fn: CloneFn<M> = Arc::new(|m: &M| m.clone());
        Self::build(nodes, rail_models, opts, Some(clone_fn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::nic::NicModel;
    use crate::time::{SimDuration, SimTime};
    use parking_lot::Mutex as PlMutex;

    #[derive(Debug, PartialEq)]
    struct Msg(u32);

    #[test]
    fn point_to_point_delivery_time() {
        let sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Msg>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
        let got = Arc::new(PlMutex::new(Vec::new()));
        for n in 0..2 {
            let got = Arc::clone(&got);
            fabric.set_sink(
                NodeId(n),
                Box::new(move |s, d| {
                    got.lock().push((n, d.src, d.msg.0, s.now()));
                }),
            );
        }
        let sched = sim.scheduler();
        let f2 = Arc::clone(&fabric);
        sched.schedule_at(SimTime::ZERO, move |s| {
            f2.send(s, RailId(0), NodeId(0), NodeId(1), 0, Msg(7), None);
        });
        sim.run().unwrap();
        let got = got.lock();
        assert_eq!(got.len(), 1);
        let (node, src, val, at) = got[0];
        assert_eq!((node, src, val), (1, NodeId(0), 7));
        // Zero-byte message arrives after the per-packet handoff cost plus
        // the wire latency.
        assert_eq!(at, SimTime(1_320));
    }

    #[test]
    fn serial_port_queues_back_to_back_sends() {
        let sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Msg>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
        let got = Arc::new(PlMutex::new(Vec::new()));
        let g = Arc::clone(&got);
        fabric.set_sink(
            NodeId(1),
            Box::new(move |s, d| g.lock().push((d.msg.0, s.now()))),
        );
        fabric.set_sink(NodeId(0), Box::new(|_, _| panic!("unexpected")));
        let sched = sim.scheduler();
        let f2 = Arc::clone(&fabric);
        let size = 1_250_000; // 1 ms of serialization at 1250 MB/s (MB=2^20)
        sched.schedule_at(SimTime::ZERO, move |s| {
            f2.send(s, RailId(0), NodeId(0), NodeId(1), size, Msg(1), None);
            assert!(f2.rail_busy(RailId(0), NodeId(0), s.now()));
            f2.send(s, RailId(0), NodeId(0), NodeId(1), size, Msg(2), None);
        });
        sim.run().unwrap();
        let got = got.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        // Second message is delayed by the first one's port occupancy
        // (per-packet cost + serialization).
        let occ = NicModel::connectx_ib().occupancy(size);
        assert_eq!(got[1].1, got[0].1 + occ);
    }

    #[test]
    fn multirail_ports_are_independent() {
        let sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Msg>> =
            Fabric::new(2, vec![NicModel::connectx_ib(), NicModel::myri10g_mx()]);
        assert_eq!(fabric.num_rails(), 2);
        let got = Arc::new(PlMutex::new(Vec::new()));
        let g = Arc::clone(&got);
        fabric.set_sink(
            NodeId(1),
            Box::new(move |s, d| g.lock().push((d.rail, s.now()))),
        );
        let sched = sim.scheduler();
        let f2 = Arc::clone(&fabric);
        sched.schedule_at(SimTime::ZERO, move |s| {
            f2.send(s, RailId(0), NodeId(0), NodeId(1), 0, Msg(0), None);
            // Rail 1 is NOT busy even though rail 0 is mid-transfer.
            assert!(!f2.rail_busy(RailId(1), NodeId(0), s.now()));
            f2.send(s, RailId(1), NodeId(0), NodeId(1), 0, Msg(0), None);
        });
        sim.run().unwrap();
        let got = got.lock();
        assert_eq!(got.len(), 2);
        // IB (1.2us + 120ns handoff) beats MX (1.5us + 150ns).
        assert_eq!(got[0].0, RailId(0));
        assert_eq!(got[0].1, SimTime(1_320));
        assert_eq!(got[1].0, RailId(1));
        assert_eq!(got[1].1, SimTime(1_650));
    }

    #[test]
    fn on_sent_fires_at_serialization_end() {
        let sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Msg>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
        fabric.set_sink(NodeId(1), Box::new(|_, _| {}));
        let sent_at = Arc::new(PlMutex::new(None));
        let sa = Arc::clone(&sent_at);
        let sched = sim.scheduler();
        let f2 = Arc::clone(&fabric);
        let size = 1_250_000;
        sched.schedule_at(SimTime::ZERO, move |s| {
            f2.send(
                s,
                RailId(0),
                NodeId(0),
                NodeId(1),
                size,
                Msg(0),
                Some(Box::new(move |s| *sa.lock() = Some(s.now()))),
            );
        });
        sim.run().unwrap();
        let occ = NicModel::connectx_ib().occupancy(size);
        assert_eq!(sent_at.lock().unwrap(), SimTime::ZERO + occ);
    }

    #[test]
    #[should_panic(expected = "inter-node only")]
    fn same_node_send_is_rejected() {
        let sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Msg>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
        let sched = sim.scheduler();
        fabric.send(
            &sched,
            RailId(0),
            NodeId(0),
            NodeId(0),
            0,
            Msg(0),
            None,
        );
        let _ = SimDuration::ZERO;
    }
}
