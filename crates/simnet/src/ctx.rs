//! The handle a rank program uses to interact with the simulation.

use std::sync::Arc;

use crate::engine::{RankId, Report, ReportCell, Scheduler, SimCore, TornDown, WakeCell};
use crate::time::{SimDuration, SimTime};

/// Per-rank simulation context, passed by value to the rank's program
/// closure. Not `Clone`: the token protocol requires a single blocking
/// entry point per rank.
pub struct RankCtx {
    core: Arc<SimCore>,
    rank: RankId,
    cell: Arc<WakeCell>,
    report: Arc<ReportCell>,
}

impl RankCtx {
    pub(crate) fn new(
        core: Arc<SimCore>,
        rank: RankId,
        cell: Arc<WakeCell>,
        report: Arc<ReportCell>,
    ) -> Self {
        RankCtx {
            core,
            rank,
            cell,
            report,
        }
    }

    /// This rank's identifier.
    #[inline]
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// A scheduler handle for posting events from rank code.
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::new(Arc::clone(&self.core))
    }

    /// Advance this rank's local time by `d` — models computation (or any
    /// fixed software cost) taking `d` of CPU time. Other ranks and
    /// background events run in the meantime.
    pub fn advance(&self, d: SimDuration) {
        let sched = self.scheduler();
        sched.wake_rank_at(self.now() + d, self.rank);
        self.park();
    }

    /// Alias for [`RankCtx::advance`] that reads naturally in application
    /// kernels ("compute for 20 µs, then wait", §4.1.2).
    #[inline]
    pub fn compute(&self, d: SimDuration) {
        self.advance(d);
    }

    /// Give other same-instant events a chance to run, then resume.
    pub fn yield_now(&self) {
        self.advance(SimDuration::ZERO);
    }

    /// Block until some event wakes this rank. Used by blocking primitives
    /// ([`crate::sem::SimSemaphore`]); the waker must have arranged for
    /// exactly one wake event targeting this rank.
    pub(crate) fn park(&self) {
        self.report.send(Report::Parked(self.rank));
        if self.cell.wait_go().is_err() {
            // The engine tore the simulation down (deadlock/panic path):
            // unwind this thread silently.
            std::panic::panic_any(TornDown);
        }
    }

    /// Wait for the initial token grant. Only called once, by the rank
    /// thread bootstrap.
    pub(crate) fn wait_go(&self) -> Result<(), ()> {
        self.cell.wait_go()
    }
}
