//! Optional ad-hoc string tracing, for debugging the protocol stacks.
//! Disabled by default (zero overhead beyond a branch).
//!
//! The engine's dispatch loop used to log "call"/"wake" strings here;
//! those sites now emit typed `obs` events (see
//! [`crate::engine::SimBuilder::with_recorder`]). The `Tracer` remains
//! for free-form notes from user code via
//! [`crate::engine::Scheduler::tracer`].

use parking_lot::Mutex;

use crate::time::SimTime;

/// One recorded trace entry.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    pub time: SimTime,
    pub kind: &'static str,
    pub detail: String,
}

/// Event recorder. Cloned freely; all clones share the same buffer.
pub struct Tracer {
    enabled: bool,
    entries: Mutex<Vec<TraceEntry>>,
}

impl Tracer {
    pub(crate) fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Is tracing active? Callers with expensive detail strings should check
    /// this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry (no-op when disabled).
    pub fn record(&self, time: SimTime, kind: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.entries.lock().push(TraceEntry {
            time,
            kind,
            detail: detail.into(),
        });
    }

    /// Snapshot of all entries so far.
    pub fn entries(&self) -> Vec<TraceEntry> {
        // Ownership constraint: callers must not hold the trace lock while
        // the sim keeps appending, so the snapshot must be an owned copy.
        self.entries.lock().clone()
    }

    /// Render the trace as text, one entry per line. Streams into one
    /// buffer with `write!` — no per-entry intermediate strings.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock();
        let mut out = String::with_capacity(entries.len() * 48);
        let mut time = String::new();
        for e in entries.iter() {
            time.clear();
            let _ = write!(time, "{}", e.time);
            let _ = writeln!(out, "{time:>14}  {:<8} {}", e.kind, e.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        t.record(SimTime(1), "x", "y");
        assert!(t.entries().is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn enabled_tracer_keeps_order() {
        let t = Tracer::new(true);
        t.record(SimTime(1), "a", "first");
        t.record(SimTime(2), "b", "second");
        let es = t.entries();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].kind, "a");
        assert_eq!(es[1].detail, "second");
        let dump = t.dump();
        assert!(dump.contains("first"));
        assert!(dump.contains("second"));
    }
}
