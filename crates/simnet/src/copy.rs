//! Copy accounting and lineage-tracked payload buffers.
//!
//! The paper's §2.1.3 / Fig. 2 argument for bypassing CH3 is that the
//! nested path costs extra handshakes **and extra copies**. This module
//! makes the copy count a first-class measured quantity instead of an
//! asserted one:
//!
//! * [`CopyMeter`] — per-stack counters for every time payload bytes are
//!   memcpy'd, every fresh payload allocation, and every zero-copy
//!   slice/share taken. One meter is threaded through the whole stack
//!   (MPI ingress → CH3 → nmad → Nemesis cells → fabric), so a run's
//!   [`CopySnapshot`] is the ground truth for "how many copies did this
//!   configuration pay per message".
//! * [`NmBuf`] — the payload newtype carried on the data path. It wraps a
//!   refcounted [`Bytes`] view plus *lineage*: which layer originated the
//!   buffer ([`BufOrigin`]) and how many zero-copy shares/slices separate
//!   this handle from that origin (`generation`). Cloning an `NmBuf` is a
//!   refcount bump, never a memcpy, and is recorded on the attached meter
//!   as a slice-ref — so the counters distinguish "the payload crossed a
//!   layer" from "the payload was duplicated".
//!
//! Determinism: the simulation is logically single-threaded (a single
//! execution token is handed between the engine and rank threads), so the
//! counters are incremented in a deterministic order and same-seed replays
//! produce bit-identical snapshots — including fault-injected runs, where
//! retransmissions and duplicate deliveries are themselves deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

/// Which layer first materialized a payload allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufOrigin {
    /// Application buffer handed to `MPI_Send`/`MPI_Isend`.
    App,
    /// CH3 layer (packet codec, landing buffers).
    Ch3,
    /// NewMadeleine core (rendezvous reassembly, wire payloads).
    Nmad,
    /// Nemesis shared-memory channel (cell copy-out reassembly).
    Nemesis,
    /// Simulated fabric/NIC (fault-injected duplicates, test rigs).
    Fabric,
}

/// Immutable tally of a [`CopyMeter`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopySnapshot {
    /// Total payload bytes that were physically memcpy'd.
    pub bytes_copied: u64,
    /// Number of distinct memcpy operations on payload bytes.
    pub memcpy_calls: u64,
    /// Number of fresh payload allocations.
    pub allocations: u64,
    /// Number of zero-copy shares/slices (refcount bumps) taken.
    pub slice_refs: u64,
}

impl CopySnapshot {
    /// Counter-wise difference (`self - earlier`), for bracketing a phase.
    pub fn since(&self, earlier: &CopySnapshot) -> CopySnapshot {
        CopySnapshot {
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
            memcpy_calls: self.memcpy_calls - earlier.memcpy_calls,
            allocations: self.allocations - earlier.allocations,
            slice_refs: self.slice_refs - earlier.slice_refs,
        }
    }
}

impl std::fmt::Display for CopySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memcpy={} ({} B) alloc={} slice={}",
            self.memcpy_calls, self.bytes_copied, self.allocations, self.slice_refs
        )
    }
}

/// Copy/allocation/share counters for one stack instance.
///
/// Cheap enough to leave on in every run: four relaxed atomic adds on the
/// payload path. The atomics are only for `Sync`; the simulator's
/// token-passing execution model means increments happen in a
/// deterministic order, so snapshots are replay-stable.
#[derive(Debug, Default)]
pub struct CopyMeter {
    bytes_copied: AtomicU64,
    memcpy_calls: AtomicU64,
    allocations: AtomicU64,
    slice_refs: AtomicU64,
}

impl CopyMeter {
    pub fn new() -> Arc<CopyMeter> {
        Arc::new(CopyMeter::default())
    }

    /// Record one memcpy of `bytes` payload bytes.
    pub fn record_copy(&self, bytes: usize) {
        self.memcpy_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one fresh payload allocation.
    pub fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one zero-copy share/slice (refcount bump, no data movement).
    pub fn record_slice(&self) {
        self.slice_refs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> CopySnapshot {
        CopySnapshot {
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            memcpy_calls: self.memcpy_calls.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            slice_refs: self.slice_refs.load(Ordering::Relaxed),
        }
    }
}

/// The payload buffer carried across the stack's layer boundaries.
///
/// An `NmBuf` is a [`Bytes`] view (refcounted storage + start/end) plus
/// lineage metadata and an optional handle to the stack's [`CopyMeter`].
/// All duplication-shaped operations are explicit:
///
/// * [`NmBuf::share`] / `Clone` — refcount bump, recorded as a slice-ref.
/// * [`NmBuf::slice`] — zero-copy sub-view (aggregation, multirail
///   splitting, fragment cursors), recorded as a slice-ref.
/// * [`NmBuf::copy_out`] / [`NmBuf::copied_from_slice`] — the only
///   operations that move bytes, recorded as memcpys.
///
/// The meter travels *with* the buffer, so layers that merely forward a
/// payload need no meter plumbing of their own, and a payload that
/// crosses a crate boundary keeps charging the same stack's counters.
#[derive(Debug)]
pub struct NmBuf {
    data: Bytes,
    origin: BufOrigin,
    /// Zero-copy hops (shares/slices) since the originating allocation.
    generation: u32,
    meter: Option<Arc<CopyMeter>>,
}

impl NmBuf {
    /// Wrap an already-owned `Bytes` without counting a new allocation
    /// (the storage existed before it entered the metered data path).
    pub fn from_bytes(data: Bytes, origin: BufOrigin) -> NmBuf {
        NmBuf {
            data,
            origin,
            generation: 0,
            meter: None,
        }
    }

    /// Wrap an owned `Bytes` and attach the stack meter, recording the
    /// ingress as an allocation-free adoption (no copy, no alloc).
    pub fn adopt(data: Bytes, origin: BufOrigin, meter: &Arc<CopyMeter>) -> NmBuf {
        NmBuf {
            data,
            origin,
            generation: 0,
            meter: Some(Arc::clone(meter)),
        }
    }

    /// Materialize a fresh owned buffer by copying `src` (the unavoidable
    /// user-slice → owned-storage ingress copy, landing-buffer freezes,
    /// codec output…). Records one allocation and one memcpy.
    pub fn copied_from_slice(src: &[u8], origin: BufOrigin, meter: &Arc<CopyMeter>) -> NmBuf {
        meter.record_alloc();
        meter.record_copy(src.len());
        NmBuf {
            data: Bytes::copy_from_slice(src),
            origin,
            generation: 0,
            meter: Some(Arc::clone(meter)),
        }
    }

    /// Take ownership of a `Vec` the caller just filled (counts the
    /// allocation; the fill itself is charged where the bytes were
    /// written).
    pub fn from_vec(v: Vec<u8>, origin: BufOrigin, meter: &Arc<CopyMeter>) -> NmBuf {
        meter.record_alloc();
        NmBuf {
            data: Bytes::from(v),
            origin,
            generation: 0,
            meter: Some(Arc::clone(meter)),
        }
    }

    /// Attach (or replace) the stack meter on an existing buffer, e.g.
    /// when an unmetered test payload enters a metered core.
    pub fn with_meter(mut self, meter: &Arc<CopyMeter>) -> NmBuf {
        self.meter = Some(Arc::clone(meter));
        self
    }

    /// Zero-copy share of the whole buffer: refcount bump, generation
    /// bump, one slice-ref on the meter. This is what layer crossings and
    /// retransmit queues use instead of cloning payload bytes.
    pub fn share(&self) -> NmBuf {
        if let Some(m) = &self.meter {
            m.record_slice();
        }
        NmBuf {
            data: self.data.clone(), // Bytes clone = refcount bump, zero-copy by construction.
            origin: self.origin,
            generation: self.generation + 1,
            meter: self.meter.as_ref().map(Arc::clone),
        }
    }

    /// Zero-copy sub-view (aggregation segments, multirail split chunks,
    /// rendezvous fragment cursors).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> NmBuf {
        if let Some(m) = &self.meter {
            m.record_slice();
        }
        NmBuf {
            data: self.data.slice(range),
            origin: self.origin,
            generation: self.generation + 1,
            meter: self.meter.as_ref().map(Arc::clone),
        }
    }

    /// Memcpy this buffer's contents into `dst` (cell fill, landing
    /// buffer gather). The one place egress copies are charged.
    pub fn copy_out(&self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data);
        if let Some(m) = &self.meter {
            m.record_copy(self.data.len());
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn origin(&self) -> BufOrigin {
        self.origin
    }

    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    #[inline]
    pub fn meter(&self) -> Option<&Arc<CopyMeter>> {
        self.meter.as_ref()
    }

    /// Borrow the underlying `Bytes` view.
    #[inline]
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    /// Surrender the underlying `Bytes` view (e.g. handing a received
    /// payload to the user). Zero-copy; lineage ends here.
    #[inline]
    pub fn into_bytes(self) -> Bytes {
        self.data
    }

    /// One-line lineage summary for `debug_state()` dumps.
    pub fn lineage(&self) -> String {
        format!(
            "{:?}+{}g/{}B",
            self.origin,
            self.generation,
            self.data.len()
        )
    }
}

/// `Clone` is required by container types on the wire (duplicate-fault
/// delivery, retransmit queues). It is defined as [`NmBuf::share`]: a
/// metered refcount bump — cloning an `NmBuf` can never memcpy payload.
impl Clone for NmBuf {
    fn clone(&self) -> NmBuf {
        self.share()
    }
}

impl Default for NmBuf {
    fn default() -> NmBuf {
        NmBuf::from_bytes(Bytes::new(), BufOrigin::App)
    }
}

impl std::ops::Deref for NmBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for NmBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Equality is over contents only — lineage is bookkeeping, not identity.
impl PartialEq for NmBuf {
    fn eq(&self, other: &NmBuf) -> bool {
        self.data == other.data
    }
}

impl Eq for NmBuf {}

impl From<Bytes> for NmBuf {
    fn from(data: Bytes) -> NmBuf {
        NmBuf::from_bytes(data, BufOrigin::App)
    }
}

impl From<Vec<u8>> for NmBuf {
    fn from(v: Vec<u8>) -> NmBuf {
        NmBuf::from_bytes(Bytes::from(v), BufOrigin::App)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_and_slice_are_zero_copy_and_metered() {
        let meter = CopyMeter::new();
        let buf = NmBuf::copied_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8], BufOrigin::App, &meter);
        let s0 = meter.snapshot();
        assert_eq!(
            s0,
            CopySnapshot {
                bytes_copied: 8,
                memcpy_calls: 1,
                allocations: 1,
                slice_refs: 0
            }
        );

        let half = buf.slice(0..4);
        let whole = buf.share();
        // Same backing storage: refcount bumps, no bytes moved.
        assert_eq!(half.bytes().storage_ptr(), buf.bytes().storage_ptr());
        assert_eq!(whole.bytes().storage_ptr(), buf.bytes().storage_ptr());
        assert_eq!(buf.bytes().ref_count(), Some(3));
        assert_eq!(whole.generation(), 1);

        let s1 = meter.snapshot().since(&s0);
        assert_eq!(s1.memcpy_calls, 0);
        assert_eq!(s1.allocations, 0);
        assert_eq!(s1.slice_refs, 2);
    }

    #[test]
    fn copy_out_charges_the_meter() {
        let meter = CopyMeter::new();
        let buf = NmBuf::adopt(Bytes::from(vec![9u8; 16]), BufOrigin::Nmad, &meter);
        let mut dst = [0u8; 16];
        buf.copy_out(&mut dst);
        assert_eq!(dst, [9u8; 16]);
        let s = meter.snapshot();
        assert_eq!((s.memcpy_calls, s.bytes_copied, s.allocations), (1, 16, 0));
    }

    #[test]
    fn lineage_reports_origin_and_generation() {
        let buf = NmBuf::from_bytes(Bytes::from(vec![0u8; 4]), BufOrigin::Ch3);
        let b2 = buf.share().share();
        assert_eq!(b2.origin(), BufOrigin::Ch3);
        assert_eq!(b2.lineage(), "Ch3+2g/4B");
    }
}
