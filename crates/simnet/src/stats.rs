//! Measurement series and table formatting shared by the benchmark
//! harnesses.
//!
//! The paper reports latency in microseconds and bandwidth in MB/s with
//! 1 MB = 1024 × 1024 bytes (§4.1); [`PingPoint::bandwidth_mbps`] follows
//! that convention.

use crate::nic::MB;
use crate::time::SimDuration;

/// One point of a ping-pong sweep: message size and one-way time.
#[derive(Clone, Copy, Debug)]
pub struct PingPoint {
    pub bytes: usize,
    /// Half round-trip time (the usual "latency" definition).
    pub one_way: SimDuration,
}

impl PingPoint {
    /// Latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.one_way.as_micros_f64()
    }

    /// Bandwidth in the paper's MB/s (MB = 2^20 bytes).
    pub fn bandwidth_mbps(&self) -> f64 {
        if self.one_way.as_nanos() == 0 {
            return 0.0;
        }
        (self.bytes as f64 / MB as f64) / self.one_way.as_secs_f64()
    }
}

/// A named series of ping-pong points (one curve on a figure).
#[derive(Clone, Debug, Default)]
pub struct PingSeries {
    pub label: String,
    pub points: Vec<PingPoint>,
}

impl PingSeries {
    pub fn new(label: impl Into<String>) -> PingSeries {
        PingSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, bytes: usize, one_way: SimDuration) {
        self.points.push(PingPoint { bytes, one_way });
    }

    /// Latency at a given size, if that size was measured.
    pub fn latency_at(&self, bytes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.bytes == bytes)
            .map(|p| p.latency_us())
    }

    /// Bandwidth at a given size, if measured.
    pub fn bandwidth_at(&self, bytes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.bytes == bytes)
            .map(|p| p.bandwidth_mbps())
    }

    /// Peak bandwidth over the sweep.
    pub fn peak_bandwidth(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_mbps())
            .fold(0.0, f64::max)
    }
}

/// Render several series as a latency table (rows = sizes, columns =
/// series), matching the paper's figure layout.
pub fn latency_table(series: &[PingSeries]) -> String {
    table(series, "Latency (usec)", |p| format!("{:.3}", p.latency_us()))
}

/// Render several series as a bandwidth table.
pub fn bandwidth_table(series: &[PingSeries]) -> String {
    table(series, "Bandwidth (MBps)", |p| {
        format!("{:.1}", p.bandwidth_mbps())
    })
}

fn table(series: &[PingSeries], caption: &str, cell: impl Fn(&PingPoint) -> String) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {caption}\n"));
    out.push_str(&format!("{:>12}", "size(B)"));
    for s in series {
        out.push_str(&format!("  {:>28}", s.label));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.bytes).collect())
        .unwrap_or_default();
    for (i, size) in sizes.iter().enumerate() {
        out.push_str(&format!("{size:>12}"));
        for s in series {
            match s.points.get(i) {
                Some(p) if p.bytes == *size => out.push_str(&format!("  {:>28}", cell(p))),
                _ => out.push_str(&format!("  {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Format a byte count the way the paper's axes do (1K, 4M, …).
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{}M", bytes / MB)
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

/// Summary statistics over f64 samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_uses_paper_mb() {
        // 1 MB in 1 ms -> 1000 MB/s with MB = 2^20.
        let p = PingPoint {
            bytes: MB,
            one_way: SimDuration::millis(1),
        };
        assert!((p.bandwidth_mbps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn series_lookup() {
        let mut s = PingSeries::new("x");
        s.push(8, SimDuration::micros(2));
        s.push(MB, SimDuration::millis(1));
        assert_eq!(s.latency_at(8), Some(2.0));
        assert!(s.latency_at(9).is_none());
        assert!((s.bandwidth_at(MB).unwrap() - 1000.0).abs() < 1e-9);
        assert!((s.peak_bandwidth() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn tables_render_all_series() {
        let mut a = PingSeries::new("A");
        a.push(1, SimDuration::micros(1));
        let mut b = PingSeries::new("B");
        b.push(1, SimDuration::micros(2));
        let t = latency_table(&[a, b]);
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert!(t.contains("1.000"));
        assert!(t.contains("2.000"));
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512");
        assert_eq!(human_bytes(4096), "4K");
        assert_eq!(human_bytes(4 * MB), "4M");
        assert_eq!(human_bytes(MB + 1), format!("{}", MB + 1));
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(Summary::of(&[]).n, 0);
    }

    #[test]
    fn zero_time_bandwidth_is_zero() {
        let p = PingPoint {
            bytes: 1,
            one_way: SimDuration::ZERO,
        };
        assert_eq!(p.bandwidth_mbps(), 0.0);
    }
}
