//! Simulated time: a nanosecond-resolution clock value and duration type.
//!
//! All timing produced by the benchmark harnesses ("latency in µs",
//! "bandwidth in MB/s") derives from these values, never from wall-clock
//! time, so every experiment is reproducible bit for bit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// The instant `n` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(n: u64) -> SimTime {
        SimTime(n)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start (lossy, for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; the simulated clock never
    /// runs backwards, so this indicates a harness bug.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration from a floating-point number of seconds, rounding to the
    /// nearest nanosecond. Negative or non-finite inputs are clamped to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// A duration from a floating-point number of microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        Self::from_secs_f64(us / 1e6)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition; simulated time cannot exceed `u64::MAX` ns
    /// (~584 simulated years), which would indicate a runaway harness.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64::MAX ns"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow: subtracting a longer duration"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + SimDuration::micros(3);
        assert_eq!(t.as_nanos(), 3_000);
        assert_eq!((t + SimDuration::nanos(42)).as_nanos(), 3_042);
    }

    #[test]
    fn since_and_sub_agree() {
        let a = SimTime(1_000);
        let b = SimTime(4_500);
        assert_eq!(b.since(a), SimDuration(3_500));
        assert_eq!(b - a, SimDuration(3_500));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_clock() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(0.3).as_nanos(), 300);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn reporting_conversions() {
        let t = SimTime(2_500);
        assert!((t.as_micros_f64() - 2.5).abs() < 1e-12);
        assert!((SimDuration::secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::micros(17)), "17.000us");
        assert_eq!(format!("{}", SimDuration::millis(17)), "17.000ms");
        assert_eq!(format!("{}", SimDuration::secs(17)), "17.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(5) > SimDuration(4));
    }
}
