//! Blocking primitives for simulated rank code.
//!
//! The paper (§3.3.2) replaces busy-waiting loops in MPICH2 with
//! "blocking primitives that can be viewed as semaphores": an application
//! thread waiting in `MPI_Wait` blocks, and PIOMan wakes it when the
//! completion is detected. [`SimSemaphore`] is the simulated equivalent —
//! rank code waits on it, and event callbacks (NIC completions, PIOMan
//! ltasks) signal it.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::RankCtx;
use crate::engine::{RankId, Scheduler};
use crate::time::SimDuration;

struct SemInner {
    count: u64,
    waiters: VecDeque<RankId>,
}

/// A counting semaphore for simulated ranks.
///
/// `signal` from an event callback performs a *direct handoff*: if a rank is
/// parked on the semaphore it is woken at the current simulated instant and
/// no permit is banked; otherwise the permit count is incremented for a
/// future `wait` to consume without blocking.
#[derive(Clone)]
pub struct SimSemaphore {
    inner: Arc<Mutex<SemInner>>,
    name: Arc<str>,
}

impl SimSemaphore {
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        SimSemaphore {
            inner: Arc::new(Mutex::new(SemInner {
                count: 0,
                waiters: VecDeque::new(),
            })),
            name: name.into(),
        }
    }

    /// Diagnostic name (shows up in deadlock reports via rank names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block the calling rank until a permit is available.
    pub fn wait(&self, ctx: &RankCtx) {
        {
            let mut inner = self.inner.lock();
            if inner.count > 0 {
                inner.count -= 1;
                return;
            }
            inner.waiters.push_back(ctx.rank());
        }
        ctx.park();
    }

    /// Consume a permit without blocking; returns `false` if none available.
    pub fn try_wait(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.count > 0 {
            inner.count -= 1;
            true
        } else {
            false
        }
    }

    /// Number of banked permits (waiters pending count as zero).
    pub fn permits(&self) -> u64 {
        self.inner.lock().count
    }

    /// Release one permit, waking the longest-parked waiter if any.
    pub fn signal(&self, sched: &Scheduler) {
        let mut inner = self.inner.lock();
        if let Some(rank) = inner.waiters.pop_front() {
            drop(inner);
            sched.wake_rank_now(rank);
        } else {
            inner.count += 1;
        }
    }

    /// Release one permit after `delay` — models a completion detected with
    /// some latency (e.g. PIOMan's synchronization cost).
    pub fn signal_in(&self, sched: &Scheduler, delay: SimDuration) {
        let sem = SimSemaphore::clone(self);
        sched.schedule_in(delay, move |s| sem.signal(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::time::SimTime;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn banked_permit_does_not_block() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("s");
        let sem2 = SimSemaphore::clone(&sem);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| sem2.signal(s));
        sim.spawn_rank("r", move |ctx| {
            ctx.advance(SimDuration::micros(1)); // let the signal land first
            assert_eq!(sem.permits(), 1);
            sem.wait(&ctx); // must not block
            assert_eq!(sem.permits(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_wait_only_takes_banked() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("s");
        let sem2 = SimSemaphore::clone(&sem);
        sim.spawn_rank("r", move |ctx| {
            assert!(!sem2.try_wait());
            sem2.signal(&ctx.scheduler());
            assert!(sem2.try_wait());
            assert!(!sem2.try_wait());
        });
        sim.run().unwrap();
        drop(sem);
    }

    #[test]
    fn fifo_wake_order() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("s");
        let order = Arc::new(PlMutex::new(Vec::new()));
        for i in 0..3 {
            let sem = SimSemaphore::clone(&sem);
            let order = Arc::clone(&order);
            sim.spawn_rank(format!("w{i}"), move |ctx| {
                // Stagger arrivals so the waiter queue is w0, w1, w2.
                ctx.advance(SimDuration::nanos(i));
                sem.wait(&ctx);
                order.lock().push(i);
            });
        }
        let sem2 = SimSemaphore::clone(&sem);
        sim.spawn_rank("signaler", move |ctx| {
            ctx.advance(SimDuration::micros(1));
            let sched = ctx.scheduler();
            sem2.signal(&sched);
            sem2.signal(&sched);
            sem2.signal(&sched);
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn signal_in_delays_wakeup() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("s");
        let woke_at = Arc::new(PlMutex::new(SimTime::ZERO));
        let woke = Arc::clone(&woke_at);
        let sem2 = SimSemaphore::clone(&sem);
        sim.spawn_rank("w", move |ctx| {
            sem2.wait(&ctx);
            *woke.lock() = ctx.now();
        });
        let sched = sim.scheduler();
        sched.schedule_at(SimTime::ZERO, move |s| {
            sem.signal_in(s, SimDuration::nanos(450));
        });
        sim.run().unwrap();
        assert_eq!(*woke_at.lock(), SimTime(450));
    }
}
