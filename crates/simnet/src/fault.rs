//! Deterministic fault injection for the simulated fabric.
//!
//! The simulator's value as a *correctness* instrument (FoundationDB-style
//! deterministic simulation) comes from being able to subject the protocol
//! stack to adverse network behaviour — lost, duplicated, delayed and
//! reordered packets, NIC stalls, registration-cache misses — while keeping
//! every run bit-for-bit replayable from a single `u64` seed.
//!
//! A [`FaultPlan`] owns one seeded `SmallRng` (the same seeding idiom as
//! [`crate::nic::JitterModel`]) and a [`FaultSpec`] per rail. The fabric
//! consults it on every transfer ([`FaultPlan::on_transfer`]) and on every
//! registration ([`FaultPlan::reg_cache_miss`]); because the simulation is
//! logically single-threaded, the consultation order — and therefore the
//! entire fault schedule — is a pure function of the seed.
//!
//! Dropping or duplicating a packet is only safe against a protocol layer
//! that retransmits and deduplicates; the NewMadeleine core grows exactly
//! that (see `nmad::config::RetryConfig`), so fault plans are only threaded
//! through fabrics whose wire protocol is retry-aware.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Per-rail fault probabilities and magnitudes. All probabilities are in
/// `[0, 1]`; a default-constructed spec injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a transfer's delivery is dropped on the wire (the
    /// sender-side DMA completion still fires — the bytes left the host).
    pub drop_pct: f64,
    /// Probability a delivered transfer arrives twice.
    pub dup_pct: f64,
    /// Probability a delivery is held back by an extra random delay, which
    /// also reorders it against later traffic.
    pub delay_pct: f64,
    /// Upper bound on the injected extra delay.
    pub max_extra_delay: SimDuration,
    /// Probability a submission stalls the NIC port for a window before
    /// transmitting (models firmware hiccups / PCIe backpressure).
    pub stall_pct: f64,
    /// Length of an injected NIC stall.
    pub stall_window: SimDuration,
    /// Probability a memory registration misses the registration cache and
    /// pays an extra (re-)registration round.
    pub reg_miss_pct: f64,
}

impl FaultSpec {
    /// No faults (identical to `FaultSpec::default()`).
    pub const NONE: FaultSpec = FaultSpec {
        drop_pct: 0.0,
        dup_pct: 0.0,
        delay_pct: 0.0,
        max_extra_delay: SimDuration::ZERO,
        stall_pct: 0.0,
        stall_window: SimDuration::ZERO,
        reg_miss_pct: 0.0,
    };

    /// Lossy wire: drops plus a few duplicates.
    pub fn drop_heavy() -> FaultSpec {
        FaultSpec {
            drop_pct: 0.15,
            dup_pct: 0.05,
            ..FaultSpec::NONE
        }
    }

    /// Heavy jitter: deliveries randomly held back far past the normal
    /// wire latency, which reorders them against later traffic.
    pub fn delay_reorder() -> FaultSpec {
        FaultSpec {
            delay_pct: 0.35,
            max_extra_delay: SimDuration::micros(200),
            dup_pct: 0.05,
            ..FaultSpec::NONE
        }
    }

    /// NIC stalls: submissions occasionally freeze the port for a window.
    pub fn nic_stall() -> FaultSpec {
        FaultSpec {
            stall_pct: 0.2,
            stall_window: SimDuration::micros(150),
            reg_miss_pct: 0.3,
            ..FaultSpec::NONE
        }
    }

    /// Everything at once — the adversarial soak schedule.
    pub fn mixed() -> FaultSpec {
        FaultSpec {
            drop_pct: 0.08,
            dup_pct: 0.08,
            delay_pct: 0.2,
            max_extra_delay: SimDuration::micros(120),
            stall_pct: 0.08,
            stall_window: SimDuration::micros(80),
            reg_miss_pct: 0.2,
        }
    }

    fn injects_anything(&self) -> bool {
        self.drop_pct > 0.0
            || self.dup_pct > 0.0
            || self.delay_pct > 0.0
            || self.stall_pct > 0.0
            || self.reg_miss_pct > 0.0
    }
}

/// Counters of injected faults (diagnostics + determinism assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    pub transfers_seen: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub stalls: u64,
    pub reg_misses: u64,
}

/// The fault verdict for one transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferFault {
    /// Suppress the delivery (the wire ate the packet).
    pub drop: bool,
    /// Deliver a second copy, `dup_extra_delay` after the first.
    pub duplicate: bool,
    /// Extra wire delay applied to the delivery (reorders vs later sends).
    pub extra_delay: SimDuration,
    /// Offset of the duplicate copy behind the original delivery.
    pub dup_extra_delay: SimDuration,
    /// Stall the port for this long before the transfer starts.
    pub stall: Option<SimDuration>,
}

struct PlanState {
    rng: SmallRng,
    counters: FaultCounters,
}

/// A seeded, replayable schedule of network faults for one fabric.
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Build a plan from a master seed and one spec per rail (rails beyond
    /// the last spec reuse it; at least one spec is required).
    pub fn new(seed: u64, specs: Vec<FaultSpec>) -> Arc<FaultPlan> {
        assert!(!specs.is_empty(), "fault plan needs at least one rail spec");
        Arc::new(FaultPlan {
            seed,
            specs,
            // Same seeding idiom as the per-port jitter RNG (nic.rs), with
            // a fixed salt so jitter and faults never share a stream.
            state: Mutex::new(PlanState {
                rng: SmallRng::seed_from_u64(
                    seed ^ 0xFA01_7000_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                counters: FaultCounters::default(),
            }),
        })
    }

    /// Convenience: one spec applied to every rail.
    pub fn uniform(seed: u64, spec: FaultSpec) -> Arc<FaultPlan> {
        Self::new(seed, vec![spec])
    }

    /// The master seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn spec(&self, rail: usize) -> FaultSpec {
        *self.specs.get(rail).unwrap_or_else(|| {
            self.specs.last().expect("fault plan has at least one spec")
        })
    }

    /// Does any rail of this plan inject anything at all?
    pub fn active(&self) -> bool {
        self.specs.iter().any(|s| s.injects_anything())
    }

    /// Can this plan lose or duplicate packets? If so, the wire protocol
    /// above must retransmit and deduplicate (timing-only faults — delays,
    /// stalls, registration misses — are safe for any protocol).
    pub fn lossy(&self) -> bool {
        self.specs
            .iter()
            .any(|s| s.drop_pct > 0.0 || s.dup_pct > 0.0)
    }

    /// Decide the fate of one transfer on `rail`. Consumes RNG state; the
    /// simulation's deterministic event order makes the decision sequence a
    /// pure function of the seed.
    pub fn on_transfer(&self, rail: usize, _bytes: usize) -> TransferFault {
        let spec = self.spec(rail);
        let mut st = self.state.lock();
        st.counters.transfers_seen += 1;
        if !spec.injects_anything() {
            return TransferFault::default();
        }
        let mut fault = TransferFault::default();
        if spec.stall_pct > 0.0 && st.rng.gen_bool(spec.stall_pct) {
            fault.stall = Some(spec.stall_window);
            st.counters.stalls += 1;
        }
        if spec.drop_pct > 0.0 && st.rng.gen_bool(spec.drop_pct) {
            fault.drop = true;
            st.counters.dropped += 1;
            // A dropped packet has no duplicate or delay to decide.
            return fault;
        }
        if spec.dup_pct > 0.0 && st.rng.gen_bool(spec.dup_pct) {
            fault.duplicate = true;
            st.counters.duplicated += 1;
            let span = spec.max_extra_delay.as_nanos().max(2_000);
            fault.dup_extra_delay = SimDuration::nanos(st.rng.gen_range(500..=span));
        }
        if spec.delay_pct > 0.0 && st.rng.gen_bool(spec.delay_pct) {
            let span = spec.max_extra_delay.as_nanos();
            if span > 0 {
                fault.extra_delay = SimDuration::nanos(st.rng.gen_range(0..=span));
                st.counters.delayed += 1;
            }
        }
        fault
    }

    /// Decide whether a registration on `rail` misses the registration
    /// cache (the registering side pays an extra registration round).
    pub fn reg_cache_miss(&self, rail: usize) -> bool {
        let spec = self.spec(rail);
        if spec.reg_miss_pct == 0.0 {
            return false;
        }
        let mut st = self.state.lock();
        let miss = st.rng.gen_bool(spec.reg_miss_pct);
        if miss {
            st.counters.reg_misses += 1;
        }
        miss
    }

    /// Snapshot of the injected-fault counters.
    pub fn counters(&self) -> FaultCounters {
        self.state.lock().counters
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("specs", &self.specs)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, n: usize) -> Vec<(bool, bool, u64, bool)> {
        (0..n)
            .map(|_| {
                let f = plan.on_transfer(0, 1024);
                (f.drop, f.duplicate, f.extra_delay.as_nanos(), f.stall.is_some())
            })
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::uniform(42, FaultSpec::mixed());
        let b = FaultPlan::uniform(42, FaultSpec::mixed());
        assert_eq!(schedule(&a, 500), schedule(&b, 500));
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::uniform(1, FaultSpec::mixed());
        let b = FaultPlan::uniform(2, FaultSpec::mixed());
        assert_ne!(schedule(&a, 500), schedule(&b, 500));
    }

    #[test]
    fn none_spec_injects_nothing() {
        let p = FaultPlan::uniform(7, FaultSpec::NONE);
        for (drop, dup, delay, stall) in schedule(&p, 200) {
            assert!(!drop && !dup && delay == 0 && !stall);
        }
        let c = p.counters();
        assert_eq!(c.dropped + c.duplicated + c.delayed + c.stalls, 0);
        assert_eq!(c.transfers_seen, 200);
        assert!(!p.active());
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = FaultPlan::uniform(11, FaultSpec::drop_heavy());
        let drops = schedule(&p, 2_000)
            .iter()
            .filter(|(d, ..)| *d)
            .count();
        // 15% ± generous slack.
        assert!((150..=450).contains(&drops), "drops={drops}");
    }

    #[test]
    fn per_rail_specs_apply() {
        let p = FaultPlan::new(3, vec![FaultSpec::NONE, FaultSpec::drop_heavy()]);
        assert!(p.active());
        for _ in 0..200 {
            assert!(!p.on_transfer(0, 64).drop, "rail 0 must be clean");
        }
        let drops = (0..500).filter(|_| p.on_transfer(1, 64).drop).count();
        assert!(drops > 20, "rail 1 must drop (got {drops})");
        // Rails beyond the spec list reuse the last spec.
        let drops2 = (0..500).filter(|_| p.on_transfer(5, 64).drop).count();
        assert!(drops2 > 20);
    }

    #[test]
    fn reg_misses_counted() {
        let p = FaultPlan::uniform(9, FaultSpec::nic_stall());
        let misses = (0..300).filter(|_| p.reg_cache_miss(0)).count();
        assert!(misses > 30, "misses={misses}");
        assert_eq!(p.counters().reg_misses as usize, misses);
    }
}
