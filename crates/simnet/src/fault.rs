//! Deterministic fault injection for the simulated fabric.
//!
//! The simulator's value as a *correctness* instrument (FoundationDB-style
//! deterministic simulation) comes from being able to subject the protocol
//! stack to adverse network behaviour — lost, duplicated, delayed and
//! reordered packets, NIC stalls, registration-cache misses — while keeping
//! every run bit-for-bit replayable from a single `u64` seed.
//!
//! A [`FaultPlan`] owns one seeded `SmallRng` (the same seeding idiom as
//! [`crate::nic::JitterModel`]) and a [`FaultSpec`] per rail. The fabric
//! consults it on every transfer ([`FaultPlan::on_transfer`]) and on every
//! registration ([`FaultPlan::reg_cache_miss`]); because the simulation is
//! logically single-threaded, the consultation order — and therefore the
//! entire fault schedule — is a pure function of the seed.
//!
//! Dropping or duplicating a packet is only safe against a protocol layer
//! that retransmits and deduplicates; the NewMadeleine core grows exactly
//! that (see `nmad::config::RetryConfig`), so fault plans are only threaded
//! through fabrics whose wire protocol is retry-aware.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// Per-rail fault probabilities and magnitudes. All probabilities are in
/// `[0, 1]`; a default-constructed spec injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a transfer's delivery is dropped on the wire (the
    /// sender-side DMA completion still fires — the bytes left the host).
    pub drop_pct: f64,
    /// Probability a delivered transfer arrives twice.
    pub dup_pct: f64,
    /// Probability a delivery is held back by an extra random delay, which
    /// also reorders it against later traffic.
    pub delay_pct: f64,
    /// Upper bound on the injected extra delay.
    pub max_extra_delay: SimDuration,
    /// Probability a submission stalls the NIC port for a window before
    /// transmitting (models firmware hiccups / PCIe backpressure).
    pub stall_pct: f64,
    /// Length of an injected NIC stall.
    pub stall_window: SimDuration,
    /// Probability a memory registration misses the registration cache and
    /// pays an extra (re-)registration round.
    pub reg_miss_pct: f64,
    /// Probability a delivered transfer arrives with corrupted payload
    /// bytes (the wire flipped bits; the CRC check above must catch it).
    pub corrupt_pct: f64,
}

impl FaultSpec {
    /// No faults (identical to `FaultSpec::default()`).
    pub const NONE: FaultSpec = FaultSpec {
        drop_pct: 0.0,
        dup_pct: 0.0,
        delay_pct: 0.0,
        max_extra_delay: SimDuration::ZERO,
        stall_pct: 0.0,
        stall_window: SimDuration::ZERO,
        reg_miss_pct: 0.0,
        corrupt_pct: 0.0,
    };

    /// Corrupted frames only: every loss comes from a failed CRC check,
    /// which the transport must treat exactly like a wire drop.
    pub fn corrupt_heavy() -> FaultSpec {
        FaultSpec {
            corrupt_pct: 0.12,
            ..FaultSpec::NONE
        }
    }

    /// Lossy wire: drops plus a few duplicates.
    pub fn drop_heavy() -> FaultSpec {
        FaultSpec {
            drop_pct: 0.15,
            dup_pct: 0.05,
            ..FaultSpec::NONE
        }
    }

    /// Heavy jitter: deliveries randomly held back far past the normal
    /// wire latency, which reorders them against later traffic.
    pub fn delay_reorder() -> FaultSpec {
        FaultSpec {
            delay_pct: 0.35,
            max_extra_delay: SimDuration::micros(200),
            dup_pct: 0.05,
            ..FaultSpec::NONE
        }
    }

    /// NIC stalls: submissions occasionally freeze the port for a window.
    pub fn nic_stall() -> FaultSpec {
        FaultSpec {
            stall_pct: 0.2,
            stall_window: SimDuration::micros(150),
            reg_miss_pct: 0.3,
            ..FaultSpec::NONE
        }
    }

    /// Everything at once — the adversarial soak schedule.
    pub fn mixed() -> FaultSpec {
        FaultSpec {
            drop_pct: 0.08,
            dup_pct: 0.08,
            delay_pct: 0.2,
            max_extra_delay: SimDuration::micros(120),
            stall_pct: 0.08,
            stall_window: SimDuration::micros(80),
            reg_miss_pct: 0.2,
            corrupt_pct: 0.05,
        }
    }

    fn injects_anything(&self) -> bool {
        self.drop_pct > 0.0
            || self.dup_pct > 0.0
            || self.delay_pct > 0.0
            || self.stall_pct > 0.0
            || self.reg_miss_pct > 0.0
            || self.corrupt_pct > 0.0
    }
}

/// What a scheduled link fault does to a rail while its window is open.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// The link is hard down: every transfer submitted during the window
    /// is eaten by the wire (sender-side completion still fires).
    Down,
    /// Brown-out: the link survives but degrades — serialization time is
    /// multiplied by `bw_factor` and wire latency by `lat_factor` (both
    /// ≥ 1.0 for a degradation).
    Brownout { bw_factor: f64, lat_factor: f64 },
}

/// One scheduled fault window `[from, until)` on one rail.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkWindow {
    pub from: SimTime,
    pub until: SimTime,
    pub fault: LinkFault,
}

impl LinkWindow {
    /// Hard link failure starting at `at` for `duration` (use a huge
    /// duration for a kill that never recovers).
    pub fn down(at: SimTime, duration: SimDuration) -> LinkWindow {
        LinkWindow {
            from: at,
            until: at + duration,
            fault: LinkFault::Down,
        }
    }

    /// Brown-out window: bandwidth/latency degradation factors applied to
    /// every transfer submitted in `[from, until)`.
    pub fn brownout(
        from: SimTime,
        until: SimTime,
        bw_factor: f64,
        lat_factor: f64,
    ) -> LinkWindow {
        assert!(bw_factor >= 1.0 && lat_factor >= 1.0, "factors degrade, not improve");
        LinkWindow {
            from,
            until,
            fault: LinkFault::Brownout {
                bw_factor,
                lat_factor,
            },
        }
    }

    /// A deterministic flapping schedule: alternating down windows over
    /// `[from, until)`, with down/up phase lengths drawn from
    /// `[mean/2, 3·mean/2]` by an RNG derived from `(seed, rail)` alone —
    /// the schedule is fixed at plan-build time and never perturbs the
    /// per-transfer fault stream, so flapping runs replay bit-for-bit.
    pub fn flapping(
        seed: u64,
        rail: usize,
        from: SimTime,
        until: SimTime,
        mean_phase: SimDuration,
    ) -> Vec<LinkWindow> {
        assert!(mean_phase > SimDuration::ZERO, "flapping needs a phase length");
        let mut rng = SmallRng::seed_from_u64(
            seed ^ 0xF1A9_9000_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (rail as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let mut windows = Vec::new();
        let mut t = from;
        let phase = |rng: &mut SmallRng| {
            let mean = mean_phase.as_nanos();
            SimDuration::nanos(rng.gen_range(mean / 2..=mean + mean / 2).max(1))
        };
        // Start each schedule with an up phase so the flap never looks
        // like a plain down-at-`from` window.
        t += phase(&mut rng);
        while t < until {
            let down = phase(&mut rng);
            let end = (t + down).min(until);
            windows.push(LinkWindow {
                from: t,
                until: end,
                fault: LinkFault::Down,
            });
            t = end + phase(&mut rng);
        }
        windows
    }
}

/// What a scheduled node fault does to a node while its window is open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// The node is dead: frames from it and to it are eaten by the wire.
    /// The crashed process no longer exists, so nothing on that host can
    /// send, receive or acknowledge.
    Dead,
    /// The node is wedged (asymmetric partition / send-path freeze): its
    /// outbound frames are eaten, but inbound traffic still reaches it.
    /// Peers observe silence — exactly the signature of a dead node —
    /// until the window closes and traffic resumes. Membership layers
    /// must NOT declare a hung-then-recovered node dead.
    Hung,
}

/// One scheduled node-fault window `[from, until)` on one node. Composes
/// with [`LinkWindow`]s and the probabilistic [`FaultSpec`] under the same
/// master seed; querying node windows consumes no RNG state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeWindow {
    pub from: SimTime,
    pub until: SimTime,
    pub fault: NodeFault,
}

impl NodeWindow {
    /// A crash at `at` that never recovers: the process is gone.
    pub fn crash(at: SimTime) -> NodeWindow {
        NodeWindow {
            from: at,
            until: SimTime(u64::MAX),
            fault: NodeFault::Dead,
        }
    }

    /// A hang (silent freeze) over `[from, until)`: outbound frames are
    /// eaten, then the node resumes. Models a merely-slow node that a
    /// membership layer must not promote to Dead.
    pub fn hang(from: SimTime, until: SimTime) -> NodeWindow {
        assert!(from < until, "empty hang window");
        NodeWindow {
            from,
            until,
            fault: NodeFault::Hung,
        }
    }

    /// A late join at `at`: the node does not exist before `at` (all its
    /// traffic is eaten), then comes up and stays up.
    pub fn join(at: SimTime) -> NodeWindow {
        assert!(at > SimTime::ZERO, "join at t=0 is a no-op");
        NodeWindow {
            from: SimTime::ZERO,
            until: at,
            fault: NodeFault::Dead,
        }
    }
}

/// Counters of injected faults (diagnostics + determinism assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    pub transfers_seen: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub stalls: u64,
    pub reg_misses: u64,
    /// Transfers eaten by a scheduled [`LinkFault::Down`] window.
    pub link_drops: u64,
    /// Transfers degraded by a [`LinkFault::Brownout`] window.
    pub brownouts: u64,
    /// Transfers delivered with corrupted payload (CRC must catch them).
    pub corrupted: u64,
    /// Deliveries eaten by a scheduled [`NodeWindow`] (dead or hung node).
    pub node_drops: u64,
}

/// The fault verdict for one transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferFault {
    /// Suppress the delivery (the wire ate the packet).
    pub drop: bool,
    /// Deliver a second copy, `dup_extra_delay` after the first.
    pub duplicate: bool,
    /// Extra wire delay applied to the delivery (reorders vs later sends).
    pub extra_delay: SimDuration,
    /// Offset of the duplicate copy behind the original delivery.
    pub dup_extra_delay: SimDuration,
    /// Stall the port for this long before the transfer starts.
    pub stall: Option<SimDuration>,
    /// Deliver the transfer with corrupted payload bytes (flagged to the
    /// sink; the protocol's CRC check turns it into an effective drop).
    pub corrupt: bool,
    /// Scheduled brown-out in effect: `(bw_factor, lat_factor)` to apply
    /// to the transfer's serialization and wire latency.
    pub brownout: Option<(f64, f64)>,
}

struct PlanState {
    rng: SmallRng,
    counters: FaultCounters,
}

/// A seeded, replayable schedule of network faults for one fabric.
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
    /// Scheduled per-rail link-fault windows (rails beyond the list have
    /// none). Fixed at build time: querying them consumes no RNG state.
    links: Vec<Vec<LinkWindow>>,
    /// Scheduled per-node fault windows (nodes beyond the list have none).
    /// Fixed at build time: querying them consumes no RNG state.
    nodes: Vec<Vec<NodeWindow>>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Build a plan from a master seed and one spec per rail (rails beyond
    /// the last spec reuse it; at least one spec is required).
    pub fn new(seed: u64, specs: Vec<FaultSpec>) -> Arc<FaultPlan> {
        Self::with_links(seed, specs, Vec::new())
    }

    /// Build a plan with scheduled link faults: `links[rail]` is that
    /// rail's window list (shorter lists leave the remaining rails clean).
    pub fn with_links(
        seed: u64,
        specs: Vec<FaultSpec>,
        links: Vec<Vec<LinkWindow>>,
    ) -> Arc<FaultPlan> {
        Self::with_nodes(seed, specs, links, Vec::new())
    }

    /// Build a plan with scheduled link *and* node faults: `nodes[n]` is
    /// node `n`'s window list (shorter lists leave remaining nodes alive).
    pub fn with_nodes(
        seed: u64,
        specs: Vec<FaultSpec>,
        links: Vec<Vec<LinkWindow>>,
        nodes: Vec<Vec<NodeWindow>>,
    ) -> Arc<FaultPlan> {
        assert!(!specs.is_empty(), "fault plan needs at least one rail spec");
        for wins in &links {
            for w in wins {
                assert!(w.from < w.until, "empty link window {w:?}");
            }
        }
        for wins in &nodes {
            for w in wins {
                assert!(w.from < w.until, "empty node window {w:?}");
            }
        }
        Arc::new(FaultPlan {
            seed,
            specs,
            links,
            nodes,
            // Same seeding idiom as the per-port jitter RNG (nic.rs), with
            // a fixed salt so jitter and faults never share a stream.
            state: Mutex::new(PlanState {
                rng: SmallRng::seed_from_u64(
                    seed ^ 0xFA01_7000_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                counters: FaultCounters::default(),
            }),
        })
    }

    /// Convenience: one spec applied to every rail.
    pub fn uniform(seed: u64, spec: FaultSpec) -> Arc<FaultPlan> {
        Self::new(seed, vec![spec])
    }

    /// The master seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-rail spec, total over any rail index: rails beyond the spec
    /// list deterministically reuse the last spec (the plan constructor
    /// guarantees at least one, but stay total regardless).
    fn spec(&self, rail: usize) -> FaultSpec {
        match self.specs.get(rail) {
            Some(s) => *s,
            None => self.specs.last().copied().unwrap_or(FaultSpec::NONE),
        }
    }

    /// The scheduled link fault covering `(rail, now)`, if any. A pure
    /// lookup — no RNG state is consumed, so health probes and strategy
    /// queries never perturb the per-transfer fault stream. `Down` wins
    /// over a simultaneous brown-out.
    pub fn link_fault(&self, rail: usize, now: SimTime) -> Option<LinkFault> {
        let wins = self.links.get(rail)?;
        let mut hit = None;
        for w in wins {
            if w.from <= now && now < w.until {
                match w.fault {
                    LinkFault::Down => return Some(LinkFault::Down),
                    LinkFault::Brownout { .. } => hit = Some(w.fault),
                }
            }
        }
        hit
    }

    /// The scheduled node fault covering `(node, now)`, if any. A pure
    /// lookup — no RNG state is consumed, so membership supervisors and
    /// test assertions never perturb the per-transfer fault stream. `Dead`
    /// wins over a simultaneous hang.
    pub fn node_fault(&self, node: usize, now: SimTime) -> Option<NodeFault> {
        let wins = self.nodes.get(node)?;
        let mut hit = None;
        for w in wins {
            if w.from <= now && now < w.until {
                match w.fault {
                    NodeFault::Dead => return Some(NodeFault::Dead),
                    NodeFault::Hung => hit = Some(w.fault),
                }
            }
        }
        hit
    }

    /// Should a delivery `src → dst` at `now` be eaten by a node fault?
    /// Dead nodes neither send nor receive; hung nodes don't send but
    /// still receive (asymmetric silence). Counts `node_drops` when true.
    /// RNG-free, so churn runs share the probabilistic fault stream with
    /// their churn-free twins.
    pub fn node_suppressed(&self, src: usize, dst: usize, now: SimTime) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let eat = self.node_fault(src, now).is_some()
            || matches!(self.node_fault(dst, now), Some(NodeFault::Dead));
        if eat {
            self.state.lock().counters.node_drops += 1;
        }
        eat
    }

    /// Does any node of this plan have a scheduled fault window?
    pub fn has_node_faults(&self) -> bool {
        self.nodes.iter().any(|w| !w.is_empty())
    }

    /// Does any rail of this plan inject anything at all?
    pub fn active(&self) -> bool {
        self.specs.iter().any(|s| s.injects_anything())
            || self.links.iter().any(|w| !w.is_empty())
            || self.has_node_faults()
    }

    /// Can this plan lose or duplicate packets? If so, the wire protocol
    /// above must retransmit and deduplicate (timing-only faults — delays,
    /// stalls, registration misses, brown-outs — are safe for any
    /// protocol). Corruption and scheduled down windows are losses: the
    /// frames never reach the protocol intact.
    pub fn lossy(&self) -> bool {
        self.specs
            .iter()
            .any(|s| s.drop_pct > 0.0 || s.dup_pct > 0.0 || s.corrupt_pct > 0.0)
            || self
                .links
                .iter()
                .flatten()
                .any(|w| w.fault == LinkFault::Down)
            || self.has_node_faults()
    }

    /// Decide the fate of one transfer submitted on `rail` at `now`.
    /// Consumes RNG state for the probabilistic faults; the scheduled link
    /// faults are a pure time lookup. The simulation's deterministic event
    /// order makes the whole decision sequence a pure function of the seed.
    pub fn on_transfer(&self, rail: usize, _bytes: usize, now: SimTime) -> TransferFault {
        let spec = self.spec(rail);
        let link = self.link_fault(rail, now);
        let mut st = self.state.lock();
        st.counters.transfers_seen += 1;
        let mut fault = TransferFault::default();
        match link {
            Some(LinkFault::Down) => {
                // The port is dead: the wire eats the transfer before any
                // probabilistic fault could apply (no RNG consumed, so
                // runs with and without the window share the tail of the
                // per-transfer stream).
                fault.drop = true;
                st.counters.link_drops += 1;
                return fault;
            }
            Some(LinkFault::Brownout { bw_factor, lat_factor }) => {
                fault.brownout = Some((bw_factor, lat_factor));
                st.counters.brownouts += 1;
            }
            None => {}
        }
        if !spec.injects_anything() {
            return fault;
        }
        if spec.stall_pct > 0.0 && st.rng.gen_bool(spec.stall_pct) {
            fault.stall = Some(spec.stall_window);
            st.counters.stalls += 1;
        }
        if spec.drop_pct > 0.0 && st.rng.gen_bool(spec.drop_pct) {
            fault.drop = true;
            st.counters.dropped += 1;
            // A dropped packet has no duplicate or delay to decide.
            return fault;
        }
        if spec.dup_pct > 0.0 && st.rng.gen_bool(spec.dup_pct) {
            fault.duplicate = true;
            st.counters.duplicated += 1;
            let span = spec.max_extra_delay.as_nanos().max(2_000);
            fault.dup_extra_delay = SimDuration::nanos(st.rng.gen_range(500..=span));
        }
        if spec.delay_pct > 0.0 && st.rng.gen_bool(spec.delay_pct) {
            let span = spec.max_extra_delay.as_nanos();
            if span > 0 {
                fault.extra_delay = SimDuration::nanos(st.rng.gen_range(0..=span));
                st.counters.delayed += 1;
            }
        }
        if spec.corrupt_pct > 0.0 && st.rng.gen_bool(spec.corrupt_pct) {
            fault.corrupt = true;
            st.counters.corrupted += 1;
        }
        fault
    }

    /// Decide whether a registration on `rail` misses the registration
    /// cache (the registering side pays an extra registration round).
    pub fn reg_cache_miss(&self, rail: usize) -> bool {
        let spec = self.spec(rail);
        if spec.reg_miss_pct == 0.0 {
            return false;
        }
        let mut st = self.state.lock();
        let miss = st.rng.gen_bool(spec.reg_miss_pct);
        if miss {
            st.counters.reg_misses += 1;
        }
        miss
    }

    /// Snapshot of the injected-fault counters.
    pub fn counters(&self) -> FaultCounters {
        self.state.lock().counters
    }
}

/// A deterministic eager-flood schedule for overload tests: N senders
/// each get a burst plan of `(gap, len)` pairs drawn once at build time
/// from an RNG derived from `(seed, sender)` alone — the same idiom as
/// [`LinkWindow::flapping`]. Each sender also draws a *skew* factor, so
/// some senders hammer the receiver in tight bursts while others trickle;
/// a uniform flood would synchronize with credit-return round trips and
/// understate the worst-case unexpected backlog.
///
/// The plan is pure data: consuming it (in a rank program) touches no
/// shared RNG, so overload runs replay bit-for-bit from the seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverloadPlan {
    seed: u64,
    /// `bursts[sender]` = that sender's `(gap before send, payload len)`
    /// sequence.
    bursts: Vec<Vec<(SimDuration, usize)>>,
}

impl OverloadPlan {
    /// Build the flood schedule: `senders` ranks, `msgs_per_sender`
    /// messages each, payload lengths in `len_range` (inclusive), gaps
    /// averaging `mean_gap` before per-sender skew.
    pub fn new(
        seed: u64,
        senders: usize,
        msgs_per_sender: usize,
        len_range: (usize, usize),
        mean_gap: SimDuration,
    ) -> OverloadPlan {
        assert!(senders > 0 && msgs_per_sender > 0, "empty flood");
        assert!(
            0 < len_range.0 && len_range.0 <= len_range.1,
            "payload range must be non-empty and non-zero (zero-length \
             messages bypass credit accounting)"
        );
        let bursts = (0..senders)
            .map(|sender| {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ 0x0F10_0D00_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (sender as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                // Skew: gap scale in [1/4, 2] — bursty vs trickling senders.
                let skew = rng.gen_range(0.25..=2.0);
                (0..msgs_per_sender)
                    .map(|_| {
                        let span = (mean_gap.as_nanos() * 2).max(1);
                        let gap = (rng.gen_range(0..=span) as f64 * skew) as u64;
                        let len = rng.gen_range(len_range.0..=len_range.1);
                        (SimDuration::nanos(gap), len)
                    })
                    .collect()
            })
            .collect();
        OverloadPlan { seed, bursts }
    }

    /// The master seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of flooding senders.
    pub fn senders(&self) -> usize {
        self.bursts.len()
    }

    /// Sender `s`'s burst sequence: `(gap to wait before the send, len)`.
    pub fn schedule(&self, sender: usize) -> &[(SimDuration, usize)] {
        &self.bursts[sender]
    }

    /// Total payload bytes the flood will deliver (receiver-side ground
    /// truth for byte-exactness assertions).
    pub fn total_bytes(&self) -> u64 {
        self.bursts
            .iter()
            .flatten()
            .map(|(_, len)| *len as u64)
            .sum()
    }

    /// Total messages across all senders.
    pub fn total_msgs(&self) -> usize {
        self.bursts.iter().map(|b| b.len()).sum()
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("specs", &self.specs)
            .field("links", &self.links)
            .field("nodes", &self.nodes)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, n: usize) -> Vec<(bool, bool, u64, bool, bool)> {
        (0..n)
            .map(|_| {
                let f = plan.on_transfer(0, 1024, SimTime::ZERO);
                (
                    f.drop,
                    f.duplicate,
                    f.extra_delay.as_nanos(),
                    f.stall.is_some(),
                    f.corrupt,
                )
            })
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::uniform(42, FaultSpec::mixed());
        let b = FaultPlan::uniform(42, FaultSpec::mixed());
        assert_eq!(schedule(&a, 500), schedule(&b, 500));
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::uniform(1, FaultSpec::mixed());
        let b = FaultPlan::uniform(2, FaultSpec::mixed());
        assert_ne!(schedule(&a, 500), schedule(&b, 500));
    }

    #[test]
    fn none_spec_injects_nothing() {
        let p = FaultPlan::uniform(7, FaultSpec::NONE);
        for (drop, dup, delay, stall, corrupt) in schedule(&p, 200) {
            assert!(!drop && !dup && delay == 0 && !stall && !corrupt);
        }
        let c = p.counters();
        assert_eq!(c.dropped + c.duplicated + c.delayed + c.stalls + c.corrupted, 0);
        assert_eq!(c.transfers_seen, 200);
        assert!(!p.active());
        assert!(!p.lossy());
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = FaultPlan::uniform(11, FaultSpec::drop_heavy());
        let drops = schedule(&p, 2_000)
            .iter()
            .filter(|(d, ..)| *d)
            .count();
        // 15% ± generous slack.
        assert!((150..=450).contains(&drops), "drops={drops}");
    }

    #[test]
    fn per_rail_specs_apply() {
        let p = FaultPlan::new(3, vec![FaultSpec::NONE, FaultSpec::drop_heavy()]);
        assert!(p.active());
        for _ in 0..200 {
            assert!(
                !p.on_transfer(0, 64, SimTime::ZERO).drop,
                "rail 0 must be clean"
            );
        }
        let drops = (0..500)
            .filter(|_| p.on_transfer(1, 64, SimTime::ZERO).drop)
            .count();
        assert!(drops > 20, "rail 1 must drop (got {drops})");
        // Rails beyond the spec list reuse the last spec.
        let drops2 = (0..500)
            .filter(|_| p.on_transfer(5, 64, SimTime::ZERO).drop)
            .count();
        assert!(drops2 > 20);
    }

    #[test]
    fn out_of_range_rail_reuses_last_spec_without_panicking() {
        // Regression: spec() used to route out-of-range rails through an
        // unwrap_or_else/expect chain; it must be a total function that
        // falls back to the last spec for any rail index.
        let p = FaultPlan::new(5, vec![FaultSpec::drop_heavy(), FaultSpec::NONE]);
        for rail in [2usize, 17, usize::MAX] {
            let f = p.on_transfer(rail, 64, SimTime::ZERO);
            assert!(!f.drop && !f.corrupt, "rail {rail} must reuse clean last spec");
            assert!(!p.reg_cache_miss(rail));
        }
    }

    #[test]
    fn reg_misses_counted() {
        let p = FaultPlan::uniform(9, FaultSpec::nic_stall());
        let misses = (0..300).filter(|_| p.reg_cache_miss(0)).count();
        assert!(misses > 30, "misses={misses}");
        assert_eq!(p.counters().reg_misses as usize, misses);
    }

    #[test]
    fn corruption_counted_and_makes_plan_lossy() {
        let p = FaultPlan::uniform(21, FaultSpec::corrupt_heavy());
        assert!(p.lossy(), "corruption is a loss for the protocol");
        let corrupted = (0..2_000)
            .filter(|_| p.on_transfer(0, 256, SimTime::ZERO).corrupt)
            .count();
        // 12% ± generous slack.
        assert!((120..=360).contains(&corrupted), "corrupted={corrupted}");
        assert_eq!(p.counters().corrupted as usize, corrupted);
    }

    #[test]
    fn link_down_window_boundaries() {
        let win = LinkWindow::down(SimTime::from_nanos(1_000), SimDuration::nanos(500));
        let p = FaultPlan::with_links(4, vec![FaultSpec::NONE], vec![vec![win]]);
        assert!(p.active());
        assert!(p.lossy(), "a down window loses frames");
        // Before the window and at its (exclusive) end: clean.
        assert!(!p.on_transfer(0, 64, SimTime::from_nanos(999)).drop);
        assert!(!p.on_transfer(0, 64, SimTime::from_nanos(1_500)).drop);
        // At the (inclusive) start and inside: dropped.
        assert!(p.on_transfer(0, 64, SimTime::from_nanos(1_000)).drop);
        assert!(p.on_transfer(0, 64, SimTime::from_nanos(1_499)).drop);
        // Other rails are untouched.
        assert!(!p.on_transfer(1, 64, SimTime::from_nanos(1_200)).drop);
        assert_eq!(p.counters().link_drops, 2);
        // Scheduled drops don't consume RNG, so the probabilistic counters
        // stay zero.
        assert_eq!(p.counters().dropped, 0);
    }

    #[test]
    fn brownout_degrades_without_dropping() {
        let win = LinkWindow::brownout(
            SimTime::from_nanos(0),
            SimTime::from_nanos(10_000),
            4.0,
            2.0,
        );
        let p = FaultPlan::with_links(4, vec![FaultSpec::NONE], vec![vec![win]]);
        assert!(p.active());
        assert!(!p.lossy(), "brown-outs only slow the wire");
        let f = p.on_transfer(0, 64, SimTime::from_nanos(500));
        assert_eq!(f.brownout, Some((4.0, 2.0)));
        assert!(!f.drop);
        assert_eq!(p.counters().brownouts, 1);
    }

    #[test]
    fn down_wins_over_overlapping_brownout() {
        let wins = vec![
            LinkWindow::brownout(SimTime::ZERO, SimTime::from_nanos(2_000), 2.0, 2.0),
            LinkWindow::down(SimTime::from_nanos(500), SimDuration::nanos(500)),
        ];
        let p = FaultPlan::with_links(4, vec![FaultSpec::NONE], vec![wins]);
        assert_eq!(
            p.link_fault(0, SimTime::from_nanos(700)),
            Some(LinkFault::Down)
        );
        assert!(matches!(
            p.link_fault(0, SimTime::from_nanos(1_500)),
            Some(LinkFault::Brownout { .. })
        ));
    }

    #[test]
    fn flapping_is_deterministic_per_seed_and_rail() {
        let from = SimTime::ZERO;
        let until = SimTime::from_nanos(10_000_000);
        let mean = SimDuration::micros(200);
        let a = LinkWindow::flapping(42, 1, from, until, mean);
        let b = LinkWindow::flapping(42, 1, from, until, mean);
        assert_eq!(a, b, "same (seed, rail) must replay the same flap");
        assert!(!a.is_empty());
        assert!(a.iter().all(|w| w.fault == LinkFault::Down));
        assert!(a.windows(2).all(|p| p[0].until < p[1].from), "alternating");
        let c = LinkWindow::flapping(42, 0, from, until, mean);
        let d = LinkWindow::flapping(43, 1, from, until, mean);
        assert_ne!(a, c, "different rail must flap differently");
        assert_ne!(a, d, "different seed must flap differently");
    }

    #[test]
    fn overload_plan_is_deterministic_and_skewed() {
        let a = OverloadPlan::new(42, 8, 50, (512, 2048), SimDuration::micros(2));
        let b = OverloadPlan::new(42, 8, 50, (512, 2048), SimDuration::micros(2));
        assert_eq!(a, b, "same seed must replay the same flood");
        assert_eq!(a.senders(), 8);
        assert_eq!(a.total_msgs(), 8 * 50);
        assert!(a.total_bytes() >= (8 * 50 * 512) as u64);
        for s in 0..8 {
            assert!(a
                .schedule(s)
                .iter()
                .all(|(_, len)| (512..=2048).contains(len)));
        }
        // Skew: at least two senders must pace differently.
        let mean_gap = |s: usize| -> u64 {
            let sched = a.schedule(s);
            sched.iter().map(|(g, _)| g.as_nanos()).sum::<u64>() / sched.len() as u64
        };
        let gaps: Vec<u64> = (0..8).map(mean_gap).collect();
        assert!(
            gaps.iter().max().unwrap() > &(gaps.iter().min().unwrap() * 2),
            "flood should be skewed, got mean gaps {gaps:?}"
        );
        let c = OverloadPlan::new(43, 8, 50, (512, 2048), SimDuration::micros(2));
        assert_ne!(a, c, "different seed must flood differently");
    }

    #[test]
    fn node_crash_window_is_permanent_and_directional() {
        let p = FaultPlan::with_nodes(
            4,
            vec![FaultSpec::NONE],
            Vec::new(),
            vec![Vec::new(), vec![NodeWindow::crash(SimTime::from_nanos(1_000))]],
        );
        assert!(p.active());
        assert!(p.lossy(), "a crashed node loses frames");
        // Before the crash: traffic flows both ways.
        assert!(!p.node_suppressed(0, 1, SimTime::from_nanos(999)));
        assert!(!p.node_suppressed(1, 0, SimTime::from_nanos(999)));
        // After: eaten in both directions, forever.
        assert!(p.node_suppressed(0, 1, SimTime::from_nanos(1_000)));
        assert!(p.node_suppressed(1, 0, SimTime::from_nanos(1_000)));
        assert!(p.node_suppressed(0, 1, SimTime::from_nanos(u64::MAX / 2)));
        // Unrelated pairs are untouched.
        assert!(!p.node_suppressed(0, 2, SimTime::from_nanos(5_000)));
        assert_eq!(p.counters().node_drops, 3);
    }

    #[test]
    fn node_hang_eats_outbound_only_then_recovers() {
        let win = NodeWindow::hang(SimTime::from_nanos(100), SimTime::from_nanos(200));
        let p = FaultPlan::with_nodes(4, vec![FaultSpec::NONE], Vec::new(), vec![vec![win]]);
        // Hung node 0: its sends die, its receives survive.
        assert!(p.node_suppressed(0, 1, SimTime::from_nanos(150)));
        assert!(!p.node_suppressed(1, 0, SimTime::from_nanos(150)));
        // Window over: back to normal.
        assert!(!p.node_suppressed(0, 1, SimTime::from_nanos(200)));
    }

    #[test]
    fn node_join_is_dead_until_join_time() {
        let win = NodeWindow::join(SimTime::from_nanos(5_000));
        let p = FaultPlan::with_nodes(4, vec![FaultSpec::NONE], Vec::new(), vec![vec![win]]);
        assert_eq!(p.node_fault(0, SimTime::ZERO), Some(NodeFault::Dead));
        assert!(p.node_suppressed(1, 0, SimTime::from_nanos(4_999)));
        assert_eq!(p.node_fault(0, SimTime::from_nanos(5_000)), None);
        assert!(!p.node_suppressed(1, 0, SimTime::from_nanos(5_000)));
    }

    #[test]
    fn node_faults_leave_rng_stream_untouched() {
        // Same seed and spec; one plan also crashes a node. The per-transfer
        // probabilistic stream must be identical — node faults are RNG-free.
        let spec = FaultSpec::mixed();
        let clean = FaultPlan::uniform(77, spec);
        let churn = FaultPlan::with_nodes(
            77,
            vec![spec],
            Vec::new(),
            vec![vec![NodeWindow::crash(SimTime::from_nanos(u64::MAX / 2))]],
        );
        for _ in 0..50 {
            assert!(!churn.node_suppressed(0, 1, SimTime::ZERO));
        }
        assert_eq!(schedule(&clean, 400), schedule(&churn, 400));
    }

    #[test]
    fn scheduled_faults_leave_rng_stream_untouched() {
        // Two plans, same seed and spec; one also has a down window. The
        // per-transfer probabilistic stream outside the window must be
        // identical — scheduled faults are RNG-free.
        let spec = FaultSpec::mixed();
        let clean = FaultPlan::uniform(77, spec);
        let down = FaultPlan::with_links(
            77,
            vec![spec],
            vec![vec![LinkWindow::down(
                SimTime::from_nanos(u64::MAX / 2),
                SimDuration::nanos(1),
            )]],
        );
        assert_eq!(schedule(&clean, 400), schedule(&down, 400));
    }
}
