//! NIC performance models and simulated NIC ports.
//!
//! The paper's testbed NICs are modelled by [`NicModel`]: a one-way wire
//! latency, a serialization bandwidth, and (for RDMA-style networks) a
//! dynamic memory-registration cost. The calibration constants come from the
//! paper's own measured numbers (§4.1.1) and are documented in DESIGN.md §4.
//!
//! A [`NicPort`] is one NIC installed in one node: a serial resource that
//! transmits one message at a time and queues the rest, which is exactly the
//! "is the network busy?" signal NewMadeleine's strategies key off
//! (§2.2: "when a network is already fulfilled with communication requests,
//! NewMadeleine keeps a window of packets to send").

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::Scheduler;
use crate::fault::FaultPlan;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Cost of registering memory with the NIC before a zero-copy transfer.
#[derive(Clone, Copy, Debug)]
pub struct RegistrationModel {
    /// Fixed per-registration cost.
    pub base: SimDuration,
    /// Additional cost per byte registered.
    pub per_byte_ns: f64,
}

impl RegistrationModel {
    /// Cost to register a buffer of `bytes`.
    pub fn cost(&self, bytes: usize) -> SimDuration {
        self.base + SimDuration::nanos((bytes as f64 * self.per_byte_ns) as u64)
    }
}

/// Optional per-transfer timing jitter: each transfer's wire time is
/// multiplied by a factor drawn uniformly from `[1−pct, 1+pct]` with a
/// deterministic seeded RNG, so jittered runs are still reproducible.
/// Used by the sensitivity harness to show the reproduced figure *shapes*
/// don't depend on the noise-free NIC model.
#[derive(Clone, Copy, Debug)]
pub struct JitterModel {
    /// Relative amplitude, e.g. 0.05 for ±5 %.
    pub pct: f64,
    /// Base seed (combined with node/rail identity per port).
    pub seed: u64,
}

/// Performance model of one network interface type.
#[derive(Clone, Debug)]
pub struct NicModel {
    /// Human-readable name, e.g. `"ConnectX IB (Verbs)"`.
    pub name: &'static str,
    /// One-way small-message wire latency (host-to-host, excluding the MPI
    /// software stack).
    pub latency: SimDuration,
    /// Serialization bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-message host-side cost to hand a buffer to the NIC.
    pub send_overhead: SimDuration,
    /// Per-message host-side cost to retrieve a buffer from the NIC.
    pub recv_overhead: SimDuration,
    /// Memory-registration cost for zero-copy (rendezvous) transfers, if the
    /// network requires registration.
    pub registration: Option<RegistrationModel>,
    /// Optional deterministic timing jitter (None = exact model).
    pub jitter: Option<JitterModel>,
}

impl NicModel {
    /// ConnectX InfiniBand through the Verbs interface: the paper reports a
    /// raw latency of 1.2 µs and a peak bandwidth around 1.25 GB/s (§4.1.1,
    /// Fig. 4).
    pub fn connectx_ib() -> NicModel {
        NicModel {
            name: "ConnectX IB (Verbs)",
            latency: SimDuration::nanos(1_200),
            bandwidth_bps: 1_250.0 * MB_F,
            send_overhead: SimDuration::nanos(120),
            recv_overhead: SimDuration::nanos(120),
            registration: Some(RegistrationModel {
                base: SimDuration::nanos(500),
                per_byte_ns: 0.012,
            }),
            jitter: None,
        }
    }

    /// Myri-10G through the MX interface: calibrated so that the full
    /// MPICH2-NewMadeleine stack lands at the ~2.4 µs small-message latency
    /// of Fig. 6(b), with a peak bandwidth around 1.1 GB/s (Fig. 5).
    pub fn myri10g_mx() -> NicModel {
        NicModel {
            name: "Myri-10G (MX)",
            latency: SimDuration::nanos(1_500),
            bandwidth_bps: 1_100.0 * MB_F,
            send_overhead: SimDuration::nanos(150),
            recv_overhead: SimDuration::nanos(150),
            // MX handles registration internally; no explicit cost.
            registration: None,
            jitter: None,
        }
    }

    /// Time from submission to last byte arriving at the peer, for a
    /// `bytes`-long message on an idle NIC: per-packet host/NIC handoff
    /// cost, then wire latency plus serialization.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.send_overhead + self.latency + self.serialization(bytes)
    }

    /// Time the NIC port stays busy per packet: the per-packet handoff
    /// cost plus serialization. The per-packet cost is what message
    /// aggregation amortizes (§2.2).
    pub fn occupancy(&self, bytes: usize) -> SimDuration {
        self.send_overhead + self.serialization(bytes)
    }

    /// Pure serialization time for `bytes` on the wire.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Registration cost for a zero-copy transfer of `bytes`;
    /// zero if the network does not require registration or `cached` is
    /// true (registration-cache hit, as in MVAPICH2).
    pub fn registration_cost(&self, bytes: usize, cached: bool) -> SimDuration {
        match (&self.registration, cached) {
            (Some(reg), false) => reg.cost(bytes),
            _ => SimDuration::ZERO,
        }
    }
}

/// 1 MB = 1024 × 1024 bytes — the paper's definition (§4.1).
pub const MB: usize = 1024 * 1024;
const MB_F: f64 = MB as f64;

/// A transfer submitted to a NIC port.
pub struct Transfer<M> {
    pub dst: NodeId,
    /// Wire size used for timing (headers + payload).
    pub bytes: usize,
    /// Structured message content, handed to the destination sink.
    pub msg: M,
    /// Invoked on the engine when the NIC has finished reading the send
    /// buffer (sender-side completion).
    pub on_sent: Option<SentHook>,
    /// Latency-critical control frame: transmitted on the port's express
    /// channel, which does not wait for (or extend) the serial transmit
    /// engine's occupancy. A real NIC interleaves such MTU-sized control
    /// packets between the fragments of an in-flight bulk message;
    /// NewMadeleine relies on this to keep acks and handshakes reactive
    /// while a rail is saturated with rendezvous data. Express frames
    /// still pay the model's send overhead, serialization and latency,
    /// and still pass through the fault plan.
    pub priority: bool,
}

/// Sender-side completion callback: fires on the engine once the NIC has
/// finished reading the send buffer.
pub type SentHook = Box<dyn FnOnce(&Scheduler) + Send>;

struct PortState<M> {
    busy_until: SimTime,
    backlog: VecDeque<Transfer<M>>,
    /// Diagnostic counters.
    messages_sent: u64,
    bytes_sent: u64,
    /// Deterministic jitter source (present iff the model has jitter).
    rng: Option<rand::rngs::SmallRng>,
}

/// One NIC installed in one node: a serial transmit resource.
pub struct NicPort<M: Send + 'static> {
    pub model: Arc<NicModel>,
    node: NodeId,
    rail: usize,
    state: Mutex<PortState<M>>,
    deliver: DeliverFn<M>,
    /// Fault injection for this port, if the fabric installed a plan.
    fault: Option<PortFault<M>>,
    /// Observability handle (rank = this port's node id).
    rec: obs::RankRec,
}

/// Routing hook installed by the [`crate::fabric::Fabric`]: given the
/// scheduler, source node, destination node, the message and whether the
/// wire corrupted its payload in flight, arrange delivery to the
/// destination's sink.
pub(crate) type DeliverFn<M> =
    Arc<dyn Fn(&Scheduler, NodeId, NodeId, M, bool) + Send + Sync>;

/// Message replicator used to materialize duplicate deliveries. Installed
/// only when the wire-message type is `Clone` (see `Fabric::with_opts`).
pub(crate) type CloneFn<M> = Arc<dyn Fn(&M) -> M + Send + Sync>;

/// Fault-injection wiring of one port: the shared plan, this port's rail
/// index within it, and the replicator for duplicated deliveries.
pub(crate) struct PortFault<M> {
    pub plan: Arc<FaultPlan>,
    pub rail: usize,
    pub clone: Option<CloneFn<M>>,
}

impl<M: Send + 'static> NicPort<M> {
    pub(crate) fn new(
        model: Arc<NicModel>,
        node: NodeId,
        rail: usize,
        seed: u64,
        deliver: DeliverFn<M>,
        fault: Option<PortFault<M>>,
        rec: obs::RankRec,
    ) -> Arc<Self> {
        use rand::SeedableRng;
        let rng = model.jitter.map(|j| {
            // Seed deterministically per port (node × rail × fabric seed)
            // so runs stay reproducible and every test names its seed.
            rand::rngs::SmallRng::seed_from_u64(
                j.seed
                    ^ seed
                    ^ (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (rail as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            )
        });
        Arc::new(NicPort {
            model,
            node,
            rail,
            state: Mutex::new(PortState {
                busy_until: SimTime::ZERO,
                backlog: VecDeque::new(),
                messages_sent: 0,
                bytes_sent: 0,
                rng,
            }),
            deliver,
            fault,
            rec,
        })
    }

    /// The node this port belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the transmit engine currently busy (or holding a backlog)?
    /// This is the signal NewMadeleine's strategies consult to decide
    /// whether to accumulate packets in the submission window.
    pub fn busy(&self, now: SimTime) -> bool {
        let st = self.state.lock();
        st.busy_until > now || !st.backlog.is_empty()
    }

    /// Earliest instant at which the transmit engine will be idle.
    pub fn free_at(&self, now: SimTime) -> SimTime {
        let st = self.state.lock();
        st.busy_until.max(now)
    }

    /// (messages, bytes) transmitted so far.
    pub fn counters(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.messages_sent, st.bytes_sent)
    }

    /// Submit a transfer. If the port is idle it starts immediately;
    /// otherwise it is queued FIFO behind in-flight transfers.
    pub fn submit(self: &Arc<Self>, sched: &Scheduler, xfer: Transfer<M>) {
        let now = sched.now();
        if xfer.priority {
            // Express channel: never queued, never occupies the serial
            // transmit engine.
            self.start_transfer(sched, now, xfer);
            return;
        }
        let start = {
            let mut st = self.state.lock();
            if st.busy_until > now || !st.backlog.is_empty() {
                st.backlog.push_back(xfer);
                return;
            }
            st.busy_until = now; // will be extended by start_transfer
            now
        };
        self.start_transfer(sched, start, xfer);
    }

    /// Begin transmitting `xfer` at `start` (port known idle).
    fn start_transfer(self: &Arc<Self>, sched: &Scheduler, start: SimTime, xfer: Transfer<M>) {
        // Fault verdict first: a stall extends the port occupancy before
        // the bytes move; drop/duplicate/delay shape the delivery below.
        let fault = self
            .fault
            .as_ref()
            .map(|pf| pf.plan.on_transfer(pf.rail, xfer.bytes, start))
            .unwrap_or_default();
        let mut serialization = self.model.serialization(xfer.bytes);
        let mut latency = self.model.latency;
        if let Some((bw_factor, lat_factor)) = fault.brownout {
            // A brown-out slows the wire, not the host: only the
            // serialization and latency legs stretch, the send overhead
            // stays at model cost.
            serialization =
                SimDuration::nanos((serialization.as_nanos() as f64 * bw_factor) as u64);
            latency = SimDuration::nanos((latency.as_nanos() as f64 * lat_factor) as u64);
        }
        let mut occupancy = self.model.send_overhead + serialization;
        if let Some(stall) = fault.stall {
            occupancy = stall + occupancy;
        }
        {
            let mut st = self.state.lock();
            if let (Some(rng), Some(j)) = (&mut st.rng, self.model.jitter) {
                use rand::Rng;
                let f = 1.0 + rng.gen_range(-j.pct..=j.pct);
                occupancy = SimDuration::nanos((occupancy.as_nanos() as f64 * f) as u64);
                latency = SimDuration::nanos((latency.as_nanos() as f64 * f) as u64);
            }
            if !xfer.priority {
                st.busy_until = start + occupancy;
            }
            st.messages_sent += 1;
            st.bytes_sent += xfer.bytes as u64;
        }
        let sent_at = start + occupancy;
        let delivered_at = sent_at + latency + fault.extra_delay;
        self.rec.engine(
            start.0,
            obs::EngineEvent::NicTx {
                rail: self.rail as u8,
                bytes: xfer.bytes as u64,
                occupancy_ns: occupancy.as_nanos(),
            },
        );
        self.rec.inc("nic.tx.msgs", 1);
        self.rec.inc("nic.tx.bytes", xfer.bytes as u64);
        self.rec.observe("nic.tx.occupancy_ns", occupancy.as_nanos());
        // Sender-side completion + backlog continuation. These fire even
        // for dropped transfers: the NIC *did* read the send buffer — only
        // the wire ate the packet. Express frames never held the transmit
        // engine, so they have no backlog to continue.
        let port = Arc::clone(self);
        let on_sent = xfer.on_sent;
        let express = xfer.priority;
        sched.schedule_at(sent_at, move |s| {
            if let Some(cb) = on_sent {
                cb(s);
            }
            if !express {
                port.pump(s);
            }
        });
        if fault.drop {
            return;
        }
        // Duplicate copy, if the fault plan asked for one and the wire
        // format is replicable.
        if fault.duplicate {
            if let Some(clone) = self.fault.as_ref().and_then(|pf| pf.clone.as_ref()) {
                let copy = clone(&xfer.msg);
                let deliver = Arc::clone(&self.deliver);
                let (src, dst) = (self.node, xfer.dst);
                sched.schedule_at(delivered_at + fault.dup_extra_delay, move |s| {
                    // Duplicates re-walk the wire independently; model them
                    // as arriving intact (the original carries the corrupt
                    // verdict).
                    deliver(s, src, dst, copy, false);
                });
            }
        }
        // Delivery at the destination.
        let deliver = Arc::clone(&self.deliver);
        let (src, dst, msg) = (self.node, xfer.dst, xfer.msg);
        let corrupted = fault.corrupt;
        sched.schedule_at(delivered_at, move |s| {
            deliver(s, src, dst, msg, corrupted);
        });
    }

    /// Start the next backlogged transfer, if any.
    fn pump(self: &Arc<Self>, sched: &Scheduler) {
        let now = sched.now();
        let next = {
            let mut st = self.state.lock();
            if st.busy_until > now {
                return; // another transfer already started
            }
            st.backlog.pop_front()
        };
        if let Some(xfer) = next {
            self.start_transfer(sched, now, xfer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_overhead_latency_serialization() {
        let m = NicModel::connectx_ib();
        let t0 = m.transfer_time(0);
        assert_eq!(t0, m.send_overhead + m.latency);
        let t1 = m.transfer_time(MB);
        // 1 MB at 1250 MB/s = 800 µs of serialization.
        let expected = m.send_overhead + m.latency + SimDuration::micros(800);
        let diff = t1.as_nanos() as i64 - expected.as_nanos() as i64;
        assert!(diff.abs() < 10, "got {t1:?}, expected {expected:?}");
        assert_eq!(m.occupancy(0), m.send_overhead);
    }

    #[test]
    fn registration_cost_respects_cache() {
        let m = NicModel::connectx_ib();
        assert_eq!(m.registration_cost(MB, true), SimDuration::ZERO);
        let uncached = m.registration_cost(MB, false);
        assert!(uncached > SimDuration::ZERO);
        // MX needs no registration at all.
        let mx = NicModel::myri10g_mx();
        assert_eq!(mx.registration_cost(MB, false), SimDuration::ZERO);
    }

    #[test]
    fn ib_calibration_matches_paper() {
        // The paper reports 1.2 µs raw IB latency (§4.1.1).
        let m = NicModel::connectx_ib();
        assert_eq!(m.latency, SimDuration::nanos(1_200));
        // And a peak bandwidth around 1.25 GB/s.
        let bw_mbps = m.bandwidth_bps / MB as f64;
        assert!((bw_mbps - 1250.0).abs() < 1.0);
    }
}
