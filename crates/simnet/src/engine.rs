//! The simulation engine: rank threads, execution-token handoff, and the
//! event dispatch loop.
//!
//! ## Token protocol
//!
//! The simulation is logically single-threaded. Exactly one of
//! {engine thread, some rank thread} executes at any moment:
//!
//! * The engine pops the earliest event. A `Call` event runs inline; a
//!   `Wake(rank)` event grants the rank's [`WakeCell`] and then blocks on
//!   the shared [`ReportCell`] until that rank reports
//!   `Parked` / `Done` back.
//! * A rank thread only executes between receiving the grant and posting
//!   its next report. Every blocking operation in rank code bottoms out in
//!   [`crate::ctx::RankCtx::park`], which performs the report-then-wait
//!   sequence.
//!
//! Because handoffs are synchronous, no two simulation participants ever run
//! concurrently and the run is fully determined by the event order.
//!
//! ## Scale
//!
//! The handoff primitives are a fixed mutex + condvar pair per rank (wake
//! side) and one shared pair (report side) — no per-message queue nodes are
//! allocated on the hot path, unlike the mpsc channels they replaced.
//! Rank threads are spawned with an explicitly small stack
//! ([`SimBuilder::rank_stack_size`], default 512 KiB) so a 4096-rank job
//! reserves ~2 GiB of lazily-committed address space instead of ~32 GiB.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

// Model-checking facade: under `--cfg loom` the handoff primitives become
// loom scheduling points, so `tests/loom_queue.rs` can prove the WakeCell
// grant/wait protocol has no lost wakeups. The APIs are call-compatible.
#[cfg(loom)]
use loom::sync::{Condvar, Mutex as StdMutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use crate::ctx::RankCtx;
use crate::event::{EventKind, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Identifier of a simulated rank (process). Dense, starting at 0, in spawn
/// order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RankId(pub usize);

impl std::fmt::Display for RankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Message a rank thread posts back to the engine when it yields the token.
pub(crate) enum Report {
    /// The rank blocked and returned the token; it now waits for a grant.
    Parked(RankId),
    /// The rank's program returned.
    Done(RankId),
    /// The rank's program panicked with this message.
    Panicked(RankId, String),
}

/// Sentinel payload used to unwind rank threads silently when the simulation
/// is torn down early (deadlock/error paths).
pub(crate) struct TornDown;

/// What a parked rank sees when it re-checks its wake cell.
enum GoSignal {
    /// No grant yet; keep waiting.
    Pending,
    /// The engine handed this rank the execution token.
    Go,
    /// The simulation is being torn down; unwind silently.
    TornDown,
}

/// Per-rank wake primitive: one mutex + condvar, reused for every handoff.
/// Granting never allocates (an mpsc send allocates a queue node per
/// message, which at thousands of ranks × millions of handoffs was pure
/// churn).
///
/// Public so the loom model-check suite (`tests/loom_queue.rs`, built with
/// `--cfg loom`) can drive the real grant/wait handoff; everything outside
/// the engine and that suite should treat it as internal.
pub struct WakeCell {
    state: StdMutex<GoSignal>,
    cv: Condvar,
}

impl WakeCell {
    pub fn new() -> Arc<WakeCell> {
        Arc::new(WakeCell {
            state: StdMutex::new(GoSignal::Pending),
            cv: Condvar::new(),
        })
    }

    /// Block until granted. `Err(())` means the simulation tore down —
    /// teardown carries no further information, so the unit error stays.
    #[allow(clippy::result_unit_err)]
    pub fn wait_go(&self) -> Result<(), ()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match *s {
                GoSignal::Go => {
                    *s = GoSignal::Pending;
                    return Ok(());
                }
                GoSignal::TornDown => return Err(()),
                GoSignal::Pending => {
                    s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Hand the execution token to the waiting rank.
    pub fn grant(&self) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = GoSignal::Go;
        self.cv.notify_one();
    }

    /// Wake the rank with a teardown signal (it unwinds silently).
    pub fn tear_down(&self) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = GoSignal::TornDown;
        self.cv.notify_one();
    }
}

/// The shared report slot. The token protocol guarantees at most one rank
/// runs (and therefore at most one report is in flight) at a time, so a
/// single Option slot replaces the old shared mpsc channel.
pub(crate) struct ReportCell {
    slot: StdMutex<Option<Report>>,
    cv: Condvar,
}

impl ReportCell {
    fn new() -> Arc<ReportCell> {
        Arc::new(ReportCell {
            slot: StdMutex::new(None),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn send(&self, r: Report) {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(s.is_none(), "two ranks reported without an engine recv");
        *s = Some(r);
        self.cv.notify_one();
    }

    fn recv(&self) -> Report {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = s.take() {
                return r;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Shared core: the event queue and clock, reachable from the engine, from
/// rank contexts, and from [`Scheduler`] handles captured in callbacks.
pub struct SimCore {
    pub(crate) queue: Mutex<EventQueue>,
    /// Current simulated time in ns; written only by the engine loop, read
    /// from anywhere without locking.
    clock_ns: AtomicU64,
    pub(crate) tracer: Tracer,
    /// Typed observability sink for the dispatch loop (off by default).
    rec: obs::RankRec,
}

impl SimCore {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.clock_ns.load(Ordering::Acquire))
    }
}

/// Handle for scheduling events and waking ranks; cheap to clone and safe to
/// capture in event callbacks.
#[derive(Clone)]
pub struct Scheduler {
    core: Arc<SimCore>,
}

impl Scheduler {
    pub(crate) fn new(core: Arc<SimCore>) -> Self {
        Scheduler { core }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Schedule `f` to run on the engine thread at absolute time `t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past; events may not rewrite history.
    pub fn schedule_at(&self, t: SimTime, f: impl FnOnce(&Scheduler) + Send + 'static) {
        assert!(
            t >= self.now(),
            "schedule_at: {t:?} is before current time {:?}",
            self.now()
        );
        self.core
            .queue
            .lock()
            .push(t, EventKind::Call(Box::new(f)));
    }

    /// Schedule `f` to run after `d` has elapsed.
    pub fn schedule_in(&self, d: SimDuration, f: impl FnOnce(&Scheduler) + Send + 'static) {
        let t = self.now() + d;
        self.core
            .queue
            .lock()
            .push(t, EventKind::Call(Box::new(f)));
    }

    /// Schedule a token handoff to `rank` at absolute time `t`.
    pub fn wake_rank_at(&self, t: SimTime, rank: RankId) {
        assert!(
            t >= self.now(),
            "wake_rank_at: {t:?} is before current time {:?}",
            self.now()
        );
        self.core.queue.lock().push(t, EventKind::Wake(rank));
    }

    /// Schedule a token handoff to `rank` at the current time (it will run
    /// after all already-queued events for this instant).
    pub fn wake_rank_now(&self, rank: RankId) {
        self.wake_rank_at(self.now(), rank);
    }

    /// Access the tracer (no-op unless tracing was enabled on the builder).
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }
}

enum RankState {
    Parked,
    Done,
}

struct RankSlot {
    name: String,
    cell: Arc<WakeCell>,
    state: RankState,
    join: Option<JoinHandle<()>>,
}

/// Default rank-thread stack size. Rank programs are shallow (the MPI stack
/// is iterative all the way down); 512 KiB leaves generous headroom for
/// debug builds while letting thousands of rank threads coexist.
pub const DEFAULT_RANK_STACK: usize = 512 * 1024;

/// Builder for a [`Sim`].
pub struct SimBuilder {
    trace: bool,
    max_events: Option<u64>,
    recorder: Option<Arc<obs::Recorder>>,
    rank_stack: usize,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            trace: false,
            max_events: None,
            recorder: None,
            rank_stack: DEFAULT_RANK_STACK,
        }
    }
}

impl SimBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the ad-hoc string [`Tracer`] (free-form notes from user
    /// code; the dispatch loop itself records typed events via
    /// [`SimBuilder::with_recorder`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Record typed dispatch events (`dispatch_call` / `dispatch_wake`)
    /// into the given observability recorder.
    pub fn with_recorder(mut self, rec: &Arc<obs::Recorder>) -> Self {
        self.recorder = Some(Arc::clone(rec));
        self
    }

    /// Abort the run with [`SimError::EventLimit`] after this many events.
    /// Useful as a runaway guard in tests.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Stack size for rank threads (default [`DEFAULT_RANK_STACK`]).
    pub fn rank_stack_size(mut self, bytes: usize) -> Self {
        self.rank_stack = bytes;
        self
    }

    pub fn build(self) -> Sim {
        let core = Arc::new(SimCore {
            queue: Mutex::new(EventQueue::new()),
            clock_ns: AtomicU64::new(0),
            tracer: Tracer::new(self.trace),
            rec: obs::RankRec::new(self.recorder.as_ref(), obs::ENGINE_RANK),
        });
        Sim {
            core,
            ranks: Vec::new(),
            report: ReportCell::new(),
            max_events: self.max_events,
            rank_stack: self.rank_stack,
            spawn_error: None,
        }
    }
}

/// Result of a completed simulation run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Simulated time at which the last event fired.
    pub final_time: SimTime,
    /// Total number of events dispatched.
    pub events: u64,
    /// Rank wake events among `events`. Each wake is a full token handoff
    /// (two OS context switches on a single-core host), so this is the
    /// wall-clock cost driver of large runs; `events - wakes` closure
    /// dispatches run inline on the engine thread.
    pub wakes: u64,
}

/// Ways a simulation can fail.
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while some ranks were still parked — the
    /// simulated programs are deadlocked. Contains the names of the stuck
    /// ranks.
    Deadlock(Vec<String>),
    /// A rank program panicked.
    RankPanic { rank: RankId, message: String },
    /// The configured event budget was exhausted.
    EventLimit(u64),
    /// The OS refused to spawn a rank thread (resource exhaustion at high
    /// rank counts).
    SpawnFailed { name: String, reason: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(ranks) => {
                write!(f, "simulation deadlock; parked ranks: {}", ranks.join(", "))
            }
            SimError::RankPanic { rank, message } => {
                write!(f, "{rank} panicked: {message}")
            }
            SimError::EventLimit(n) => write!(f, "event budget of {n} exhausted"),
            SimError::SpawnFailed { name, reason } => {
                write!(f, "failed to spawn rank thread '{name}': {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A discrete-event simulation with rank threads.
pub struct Sim {
    core: Arc<SimCore>,
    ranks: Vec<RankSlot>,
    report: Arc<ReportCell>,
    max_events: Option<u64>,
    rank_stack: usize,
    /// First spawn failure, surfaced by [`Sim::run`] (see
    /// [`Sim::spawn_rank`]).
    spawn_error: Option<SimError>,
}

impl Sim {
    /// Shared core handle, for constructing [`Scheduler`]s before the run
    /// starts (e.g. to schedule initial background events).
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::new(Arc::clone(&self.core))
    }

    /// Spawn a rank thread running `f`. The rank starts (receives the token
    /// for the first time) at simulated time zero, in spawn order.
    ///
    /// On OS spawn failure the error is recorded and returned by
    /// [`Sim::run`] as [`SimError::SpawnFailed`] (the returned `RankId`
    /// stays dense; the dead slot never wakes). Use
    /// [`Sim::try_spawn_rank`] to handle the failure at the call site.
    pub fn spawn_rank(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(RankCtx) + Send + 'static,
    ) -> RankId {
        match self.try_spawn_rank(name, f) {
            Ok(id) => id,
            Err(e) => {
                let id = RankId(self.ranks.len());
                let name = match &e {
                    SimError::SpawnFailed { name, .. } => name.clone(),
                    _ => unreachable!("try_spawn_rank only fails with SpawnFailed"),
                };
                if self.spawn_error.is_none() {
                    self.spawn_error = Some(e);
                }
                // Dense placeholder so later RankIds stay valid; marked Done
                // so the dispatch loop never grants it.
                self.ranks.push(RankSlot {
                    name,
                    cell: WakeCell::new(),
                    state: RankState::Done,
                    join: None,
                });
                id
            }
        }
    }

    /// Spawn a rank thread, surfacing OS thread-creation failure to the
    /// caller instead of recording it for [`Sim::run`].
    pub fn try_spawn_rank(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(RankCtx) + Send + 'static,
    ) -> Result<RankId, SimError> {
        let id = RankId(self.ranks.len());
        let name = name.into();
        let cell = WakeCell::new();
        let ctx = RankCtx::new(
            Arc::clone(&self.core),
            id,
            Arc::clone(&cell),
            Arc::clone(&self.report),
        );
        let report = Arc::clone(&self.report);
        let tname = format!("sim-{name}");
        let join = match std::thread::Builder::new()
            .name(tname)
            .stack_size(self.rank_stack)
            .spawn(move || {
                // Wait for the first token grant before touching anything.
                if ctx.wait_go().is_err() {
                    return; // torn down before start
                }
                let rank = ctx.rank();
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(ctx)));
                match result {
                    Ok(()) => {
                        report.send(Report::Done(rank));
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<TornDown>().is_some() {
                            // Silent unwind during teardown; do not report.
                            return;
                        }
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".into());
                        report.send(Report::Panicked(rank, msg));
                    }
                }
            }) {
            Ok(j) => j,
            Err(e) => {
                return Err(SimError::SpawnFailed {
                    name,
                    reason: e.to_string(),
                })
            }
        };
        self.ranks.push(RankSlot {
            name,
            cell,
            state: RankState::Parked,
            join: Some(join),
        });
        // First activation at t=0.
        self.core
            .queue
            .lock()
            .push(SimTime::ZERO, EventKind::Wake(id));
        Ok(id)
    }

    /// Number of ranks spawned so far.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> Result<SimOutcome, SimError> {
        let result = self.run_inner();
        self.teardown();
        result
    }

    fn run_inner(&mut self) -> Result<SimOutcome, SimError> {
        if let Some(e) = self.spawn_error.take() {
            return Err(e);
        }
        let sched = Scheduler::new(Arc::clone(&self.core));
        let mut done_count = self
            .ranks
            .iter()
            .filter(|r| matches!(r.state, RankState::Done))
            .count();
        // Local dispatch counter: saves re-locking the queue for the
        // event-budget check on every iteration of the hot loop.
        let mut dispatched: u64 = self.core.queue.lock().dispatched();
        let mut wakes: u64 = 0;
        loop {
            // Rank-driven simulations finish when every rank returned, even
            // if recurring background events (progress timers) are still
            // queued — nothing observable can happen anymore.
            if !self.ranks.is_empty() && done_count == self.ranks.len() {
                return Ok(SimOutcome {
                    final_time: self.core.now(),
                    events: dispatched,
                    wakes,
                });
            }
            let popped = self.core.queue.lock().pop();
            let (t, kind) = match popped {
                Some(e) => e,
                None => {
                    if done_count == self.ranks.len() {
                        return Ok(SimOutcome {
                            final_time: self.core.now(),
                            events: dispatched,
                            wakes,
                        });
                    }
                    let stuck: Vec<String> = self
                        .ranks
                        .iter()
                        .filter(|r| !matches!(r.state, RankState::Done))
                        // Ownership constraint: the deadlock report outlives
                        // `self`, so the stuck ranks' names must be owned.
                        .map(|r| r.name.clone())
                        .collect();
                    return Err(SimError::Deadlock(stuck));
                }
            };
            dispatched += 1;
            debug_assert!(t >= self.core.now(), "event queue went backwards");
            self.core.clock_ns.store(t.0, Ordering::Release);
            if let Some(limit) = self.max_events {
                if dispatched > limit {
                    return Err(SimError::EventLimit(limit));
                }
            }
            match kind {
                EventKind::Call(f) => {
                    self.core.rec.engine(t.0, obs::EngineEvent::DispatchCall);
                    f(&sched);
                }
                EventKind::Wake(rank) => {
                    let slot = &self.ranks[rank.0];
                    match slot.state {
                        RankState::Done => {
                            // A wake raced with rank completion; a completed
                            // rank cannot be blocked, so this indicates a
                            // harness bug (e.g. double-signal of a semaphore
                            // after its waiter returned).
                            panic!(
                                "wake event for finished rank {} ({})",
                                rank.0, slot.name
                            );
                        }
                        RankState::Parked => {}
                    }
                    self.core.rec.engine(t.0, obs::EngineEvent::DispatchWake);
                    wakes += 1;
                    slot.cell.grant();
                    match self.report.recv() {
                        Report::Parked(r) => {
                            debug_assert_eq!(
                                r, rank,
                                "token returned by a different rank than was woken"
                            );
                        }
                        Report::Done(r) => {
                            self.ranks[r.0].state = RankState::Done;
                            done_count += 1;
                        }
                        Report::Panicked(r, message) => {
                            self.ranks[r.0].state = RankState::Done;
                            return Err(SimError::RankPanic { rank: r, message });
                        }
                    }
                }
            }
        }
    }

    /// Unblock and join every rank thread, silently unwinding any that are
    /// still parked (error paths).
    fn teardown(&mut self) {
        for slot in &mut self.ranks {
            // A torn-down wake cell makes a parked rank's wait fail, which
            // RankCtx turns into a silent TornDown unwind.
            slot.cell.tear_down();
            if let Some(join) = slot.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::SimSemaphore;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_sim_completes_at_time_zero() {
        let sim = SimBuilder::new().build();
        let out = sim.run().unwrap();
        assert_eq!(out.final_time, SimTime::ZERO);
        assert_eq!(out.events, 0);
    }

    #[test]
    fn single_rank_advances_clock() {
        let mut sim = SimBuilder::new().build();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        sim.spawn_rank("r0", move |ctx| {
            seen2.lock().push(ctx.now());
            ctx.advance(SimDuration::micros(5));
            seen2.lock().push(ctx.now());
            ctx.advance(SimDuration::micros(3));
            seen2.lock().push(ctx.now());
        });
        let out = sim.run().unwrap();
        assert_eq!(out.final_time, SimTime(8_000));
        assert_eq!(
            *seen.lock(),
            vec![SimTime(0), SimTime(5_000), SimTime(8_000)]
        );
    }

    #[test]
    fn two_ranks_interleave_deterministically() {
        let mut sim = SimBuilder::new().build();
        let log = Arc::new(Mutex::new(Vec::new()));
        for r in 0..2u64 {
            let log = Arc::clone(&log);
            sim.spawn_rank(format!("r{r}"), move |ctx| {
                for step in 0..3u64 {
                    log.lock().push((r, step, ctx.now()));
                    // Rank 0 advances 10us, rank 1 advances 15us per step.
                    ctx.advance(SimDuration::micros(10 + 5 * r));
                }
            });
        }
        sim.run().unwrap();
        let log = log.lock();
        // Sorted by simulated time with rank order breaking ties.
        let expected = vec![
            (0, 0, SimTime(0)),
            (1, 0, SimTime(0)),
            (0, 1, SimTime(10_000)),
            (1, 1, SimTime(15_000)),
            (0, 2, SimTime(20_000)),
            (1, 2, SimTime(30_000)),
        ];
        assert_eq!(*log, expected);
    }

    #[test]
    fn callbacks_fire_between_rank_steps() {
        let mut sim = SimBuilder::new().build();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let sched = sim.scheduler();
        sched.schedule_at(SimTime(2_000), move |_| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        let hits3 = Arc::clone(&hits);
        sim.spawn_rank("r0", move |ctx| {
            ctx.advance(SimDuration::micros(1));
            assert_eq!(hits3.load(Ordering::SeqCst), 0);
            ctx.advance(SimDuration::micros(2));
            assert_eq!(hits3.load(Ordering::SeqCst), 1);
        });
        sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_handoff_between_ranks() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("test");
        let sem2 = SimSemaphore::clone(&sem);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        sim.spawn_rank("waiter", move |ctx| {
            sem2.wait(&ctx);
            o1.lock().push(("woken", ctx.now()));
        });
        sim.spawn_rank("signaler", move |ctx| {
            ctx.advance(SimDuration::micros(7));
            o2.lock().push(("signal", ctx.now()));
            sem.signal(&ctx.scheduler());
        });
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec![("signal", SimTime(7_000)), ("woken", SimTime(7_000))]
        );
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let mut sim = SimBuilder::new().build();
        let sem = SimSemaphore::new("never");
        sim.spawn_rank("stuck-rank", move |ctx| {
            sem.wait(&ctx); // nobody signals
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck-rank"]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_is_reported() {
        let mut sim = SimBuilder::new().build();
        sim.spawn_rank("bad", |_ctx| panic!("boom"));
        match sim.run() {
            Err(SimError::RankPanic { message, .. }) => assert!(message.contains("boom")),
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guard() {
        let mut sim = SimBuilder::new().max_events(10).build();
        sim.spawn_rank("spinner", |ctx| loop {
            ctx.advance(SimDuration::nanos(1));
        });
        match sim.run() {
            Err(SimError::EventLimit(10)) => {}
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn chained_callbacks_reschedule() {
        let sim = SimBuilder::new().build();
        let count = Arc::new(AtomicUsize::new(0));
        let sched = sim.scheduler();
        fn tick(s: &Scheduler, count: Arc<AtomicUsize>, left: usize) {
            if left == 0 {
                return;
            }
            count.fetch_add(1, Ordering::SeqCst);
            let c = Arc::clone(&count);
            s.schedule_in(SimDuration::micros(1), move |s| tick(s, c, left - 1));
        }
        let c = Arc::clone(&count);
        sched.schedule_at(SimTime::ZERO, move |s| tick(s, c, 5));
        // Need at least one rank so the run isn't trivially empty? No — pure
        // callback sims are fine.
        let out = sim.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        // The final (no-op) tick still fires at 5 µs.
        assert_eq!(out.final_time, SimTime(5_000));
    }

    #[test]
    fn yield_now_lets_same_time_events_run() {
        let mut sim = SimBuilder::new().build();
        let flag = Arc::new(AtomicUsize::new(0));
        let f1 = Arc::clone(&flag);
        let f2 = Arc::clone(&flag);
        sim.spawn_rank("r0", move |ctx| {
            // Schedule a same-time callback, then yield; it must have fired
            // by the time we resume.
            let f = Arc::clone(&f1);
            ctx.scheduler()
                .schedule_in(SimDuration::ZERO, move |_| {
                    f.store(1, Ordering::SeqCst);
                });
            ctx.yield_now();
            assert_eq!(f2.load(Ordering::SeqCst), 1);
        });
        sim.run().unwrap();
    }

    #[test]
    fn small_stack_threads_run_many_ranks() {
        // A thousand parked rank threads on 128 KiB stacks: spawn, step,
        // finish. Guards the spawn_rank stack-size plumbing.
        let mut sim = SimBuilder::new().rank_stack_size(128 * 1024).build();
        let hits = Arc::new(AtomicUsize::new(0));
        for r in 0..1000 {
            let hits = Arc::clone(&hits);
            sim.spawn_rank(format!("r{r}"), move |ctx| {
                ctx.advance(SimDuration::nanos(10 * (r as u64 % 7)));
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn try_spawn_rank_surfaces_os_failure() {
        // An absurd stack size makes thread creation fail; the error must
        // come back as a clean SpawnFailed, not a panic.
        let mut sim = SimBuilder::new().rank_stack_size(usize::MAX / 2).build();
        match sim.try_spawn_rank("huge", |_ctx| {}) {
            Err(SimError::SpawnFailed { name, .. }) => assert_eq!(name, "huge"),
            Ok(_) => {
                // Some platforms clamp instead of failing; then the spawn
                // succeeding is fine — run must still complete.
                sim.run().unwrap();
            }
            Err(other) => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn spawn_rank_failure_fails_run_cleanly() {
        let mut sim = SimBuilder::new().rank_stack_size(usize::MAX / 2).build();
        let id = sim.spawn_rank("huge", |_ctx| {});
        assert_eq!(id, RankId(0), "placeholder keeps ids dense");
        match sim.run() {
            Err(SimError::SpawnFailed { name, .. }) => assert_eq!(name, "huge"),
            Ok(_) => {} // platform clamped the stack; acceptable
            Err(other) => panic!("wrong error {other:?}"),
        }
    }
}
