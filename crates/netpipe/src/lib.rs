//! # netpipe — the measurement harness of §4.1
//!
//! A reimplementation of the Netpipe test program (Snell, Mikler,
//! Gustafson — the paper's reference [14]): for each message size on a
//! power-of-two ladder, measure a ping-pong round trip and report one-way
//! latency and bandwidth.
//!
//! [`run_sweep`] runs the whole sweep inside one simulated 2-rank MPI job
//! (one rank per node, as on the paper's testbed) and produces a
//! [`simnet::stats::PingSeries`] — one curve of Figs. 4–6.

pub mod sweep;

pub use sweep::{run_sweep, NetpipeOptions, BW_SIZES, LAT_SIZES};
