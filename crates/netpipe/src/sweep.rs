//! The ping-pong sweep.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::stats::PingSeries;
use simnet::{Cluster, Placement, SimDuration};

use mpi_ch3::stack::{run_mpi, StackConfig};
use mpi_ch3::{MpiHandle, Src};

/// The latency-figure size ladder (Figs. 4a/5a/6: 1 B – 512 B).
pub const LAT_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// The bandwidth-figure size ladder (Figs. 4b/5b: 1 B – 64 MB).
pub const BW_SIZES: &[usize] = &[
    1,
    4,
    16,
    64,
    256,
    1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
];

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct NetpipeOptions {
    /// Message sizes to measure.
    pub sizes: Vec<usize>,
    /// Timed round trips per size.
    pub iters_small: usize,
    /// Timed round trips for sizes ≥ 64 KB (large transfers are slow and
    /// noise-free in simulation, so a couple suffice).
    pub iters_large: usize,
    /// Receive with MPI_ANY_SOURCE on the measuring rank (the "w/AS" curve
    /// of Fig. 4a).
    pub any_source: bool,
    /// Put the two ranks on the same node (the shared-memory curves of
    /// Fig. 6a).
    pub same_node: bool,
}

impl Default for NetpipeOptions {
    fn default() -> Self {
        NetpipeOptions {
            sizes: LAT_SIZES.to_vec(),
            iters_small: 20,
            iters_large: 2,
            any_source: false,
            same_node: false,
        }
    }
}

impl NetpipeOptions {
    pub fn latency() -> NetpipeOptions {
        NetpipeOptions::default()
    }

    pub fn bandwidth() -> NetpipeOptions {
        NetpipeOptions {
            sizes: BW_SIZES.to_vec(),
            iters_small: 10,
            iters_large: 2,
            ..Default::default()
        }
    }
}

/// Run the sweep for one stack on `cluster`; returns the measured series
/// labelled `label`.
pub fn run_sweep(
    cluster: &Cluster,
    cfg: &StackConfig,
    opts: &NetpipeOptions,
    label: impl Into<String>,
) -> PingSeries {
    let placement = if opts.same_node {
        Placement::block(2, cluster)
    } else {
        Placement::one_per_node(2, cluster)
    };
    let results: Arc<Mutex<Vec<(usize, SimDuration)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    let opts2 = opts.clone();
    run_mpi(
        cluster,
        &placement,
        cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            pingpong_rank(&mpi, &opts2, &r2);
        }),
    );
    let mut series = PingSeries::new(label);
    for (bytes, one_way) in results.lock().iter() {
        series.push(*bytes, *one_way);
    }
    series
}

fn pingpong_rank(
    mpi: &MpiHandle,
    opts: &NetpipeOptions,
    results: &Arc<Mutex<Vec<(usize, SimDuration)>>>,
) {
    let me = mpi.rank();
    let peer = 1 - me;
    for &size in &opts.sizes {
        let iters = if size >= 64 * 1024 {
            opts.iters_large
        } else {
            opts.iters_small
        };
        let payload = vec![0xA5u8; size];
        // The "w/AS" curve posts every receive with MPI_ANY_SOURCE on both
        // sides, so the full 300 ns surcharge shows per one-way (as in
        // Fig. 4a, 2.1 µs → 2.4 µs).
        let src = if opts.any_source {
            Src::Any
        } else {
            Src::Rank(peer)
        };
        if me == 0 {
            // Warmup round (fills caches/windows, aligns both ranks).
            mpi.send(peer, 1, &payload);
            mpi.recv(src, 1);
            let t0 = mpi.now();
            for _ in 0..iters {
                mpi.send(peer, 1, &payload);
                let (echo, _) = mpi.recv(src, 1);
                debug_assert_eq!(echo.len(), size);
            }
            let elapsed = mpi.now() - t0;
            let one_way = SimDuration::nanos(elapsed.as_nanos() / (2 * iters as u64));
            results.lock().push((size, one_way));
        } else {
            mpi.recv(src, 1);
            mpi.send(peer, 1, &payload);
            for _ in 0..iters {
                mpi.recv(src, 1);
                mpi.send(peer, 1, &payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_produces_monotonic_series() {
        let cluster = Cluster::xeon_pair();
        let cfg = StackConfig::mpich2_nmad_rail(0, false);
        let mut opts = NetpipeOptions::latency();
        opts.iters_small = 5;
        let s = run_sweep(&cluster, &cfg, &opts, "test");
        assert_eq!(s.points.len(), LAT_SIZES.len());
        // Latency grows (weakly) with size.
        for w in s.points.windows(2) {
            assert!(w[1].one_way >= w[0].one_way);
        }
        // Small-message latency lands at the calibrated 2.1us.
        let lat1 = s.latency_at(1).unwrap();
        assert!((lat1 - 2.1).abs() < 0.2, "1B latency {lat1}");
    }

    #[test]
    fn bandwidth_sweep_approaches_wire_rate() {
        let cluster = Cluster::xeon_pair();
        let cfg = StackConfig::mpich2_nmad_rail(0, false);
        let opts = NetpipeOptions {
            sizes: vec![1024, 1024 * 1024, 16 * 1024 * 1024],
            iters_small: 3,
            iters_large: 1,
            ..Default::default()
        };
        let s = run_sweep(&cluster, &cfg, &opts, "bw");
        let peak = s.peak_bandwidth();
        assert!(
            peak > 1000.0 && peak <= 1260.0,
            "peak bandwidth {peak:.0} MB/s over a 1250 MB/s NIC"
        );
    }

    #[test]
    fn same_node_sweep_uses_shared_memory() {
        let cluster = Cluster::xeon_pair();
        let cfg = StackConfig::mpich2_nmad(false);
        let opts = NetpipeOptions {
            sizes: vec![1, 64],
            iters_small: 10,
            same_node: true,
            ..Default::default()
        };
        let s = run_sweep(&cluster, &cfg, &opts, "shm");
        let lat = s.latency_at(1).unwrap();
        assert!(lat < 0.5, "shm latency {lat}us must be sub-microsecond");
    }

    #[test]
    fn any_source_sweep_is_slower_by_a_constant() {
        let cluster = Cluster::xeon_pair();
        let cfg = StackConfig::mpich2_nmad_rail(0, false);
        let mut base_opts = NetpipeOptions::latency();
        base_opts.sizes = vec![4, 256];
        base_opts.iters_small = 10;
        let mut as_opts = base_opts.clone();
        as_opts.any_source = true;
        let base = run_sweep(&cluster, &cfg, &base_opts, "known");
        let any = run_sweep(&cluster, &cfg, &as_opts, "any");
        for (b, a) in base.points.iter().zip(&any.points) {
            assert!(
                a.one_way > b.one_way,
                "ANY_SOURCE must cost extra at {}B",
                b.bytes
            );
        }
    }
}
