//! Tests of the IS kernel extension — the benchmark the paper could not
//! run ("IS needs datatypes support"), enabled here by
//! `mpi_ch3::datatype`.

use mpi_ch3::stack::StackConfig;
use nasbench::{run_nas, Class, Kernel};
use simnet::Cluster;

#[test]
fn is_runs_on_every_stack_flavor() {
    let cluster = Cluster::grid5000_opteron();
    for stack in [
        StackConfig::mpich2_nmad(false),
        StackConfig::mpich2_nmad(true),
    ] {
        let r = run_nas(&cluster, &stack, Kernel::IS, Class::A, 4, Some(1));
        assert!(r.time_s > 0.0, "IS produced no time on {}", stack.name);
        assert_eq!(r.kernel.name(), "IS");
    }
}

#[test]
fn is_is_the_lightest_kernel() {
    // IS class C is famously the shortest NPB run.
    let cluster = Cluster::grid5000_opteron();
    let stack = StackConfig::mpich2_nmad(false);
    let is = run_nas(&cluster, &stack, Kernel::IS, Class::A, 8, Some(1));
    let mg = run_nas(&cluster, &stack, Kernel::MG, Class::A, 8, Some(1));
    assert!(
        is.time_s < mg.time_s,
        "IS ({}) should undercut MG ({})",
        is.time_s,
        mg.time_s
    );
}

#[test]
fn all_with_is_includes_eight_kernels() {
    assert_eq!(Kernel::ALL.len(), 7, "the paper's figure has 7 kernels");
    assert_eq!(Kernel::ALL_WITH_IS.len(), 8);
    assert!(Kernel::ALL_WITH_IS.contains(&Kernel::IS));
    assert!(!Kernel::ALL.contains(&Kernel::IS));
}

#[test]
fn is_scales_with_ranks() {
    let cluster = Cluster::grid5000_opteron();
    let stack = StackConfig::mpich2_nmad(false);
    let r4 = run_nas(&cluster, &stack, Kernel::IS, Class::A, 4, Some(1));
    let r16 = run_nas(&cluster, &stack, Kernel::IS, Class::A, 16, Some(1));
    assert!(
        r4.time_s / r16.time_s > 1.5,
        "IS 4->16 speedup too low: {} vs {}",
        r4.time_s,
        r16.time_s
    );
}
