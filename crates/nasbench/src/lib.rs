//! # nasbench — the NAS Parallel Benchmark kernels of §4.2
//!
//! Communication-accurate reimplementations of the seven NAS kernels the
//! paper runs (BT, CG, EP, FT, SP, MG, LU; IS is excluded exactly as in
//! the paper because it needs datatype support). Each kernel is an MPI
//! program over [`mpi_ch3::MpiHandle`] whose *communication pattern*
//! (neighbours, message counts, message sizes, collectives) follows the
//! NPB 2.4 algorithms, while the *computation* is a calibrated
//! `compute(…)` time model (DESIGN.md documents the substitution: the
//! paper's absolute seconds depend on Opteron flop rates we don't model;
//! the reproduced claim is the relative ordering and scaling shape of
//! Fig. 8).
//!
//! To keep simulations tractable, a run executes a few timed iterations
//! and extrapolates to the kernel's full iteration count (`niter`) —
//! legitimate because NPB iterations are statistically identical.

pub mod decomp;
pub mod kernels;
pub mod model;
pub mod run;

pub use model::{Class, Kernel, KernelParams};
pub use run::{run_nas, NasResult};
