//! Process-grid decompositions used by the kernels.

/// A square q×q process grid (BT, SP, LU). Rank = row·q + col.
#[derive(Clone, Copy, Debug)]
pub struct SquareGrid {
    pub q: usize,
    pub rank: usize,
}

impl SquareGrid {
    pub fn new(rank: usize, nprocs: usize) -> SquareGrid {
        let q = (nprocs as f64).sqrt().round() as usize;
        assert_eq!(q * q, nprocs, "{nprocs} is not a square");
        SquareGrid { q, rank }
    }

    pub fn row(&self) -> usize {
        self.rank / self.q
    }

    pub fn col(&self) -> usize {
        self.rank % self.q
    }

    fn at(&self, row: usize, col: usize) -> usize {
        row * self.q + col
    }

    /// Neighbour one step in the given direction, wrapping (torus) —
    /// BT/SP exchange on a torus.
    pub fn torus_neighbor(&self, drow: isize, dcol: isize) -> usize {
        let q = self.q as isize;
        let r = (self.row() as isize + drow).rem_euclid(q) as usize;
        let c = (self.col() as isize + dcol).rem_euclid(q) as usize;
        self.at(r, c)
    }

    /// Non-wrapping neighbour (LU's wavefront): `None` at the boundary.
    pub fn mesh_neighbor(&self, drow: isize, dcol: isize) -> Option<usize> {
        let r = self.row() as isize + drow;
        let c = self.col() as isize + dcol;
        if r < 0 || c < 0 || r >= self.q as isize || c >= self.q as isize {
            None
        } else {
            Some(self.at(r as usize, c as usize))
        }
    }
}

/// A rectangular rows×cols process mesh for power-of-two counts
/// (LU's decomposition: cols = 2^⌈k/2⌉, rows = 2^⌊k/2⌋). Non-wrapping
/// neighbours, for wavefront sweeps.
#[derive(Clone, Copy, Debug)]
pub struct RectGrid {
    pub rows: usize,
    pub cols: usize,
    pub rank: usize,
}

impl RectGrid {
    pub fn new(rank: usize, nprocs: usize) -> RectGrid {
        assert!(nprocs.is_power_of_two(), "{nprocs} is not a power of two");
        let k = nprocs.trailing_zeros() as usize;
        let cols = 1 << k.div_ceil(2);
        let rows = nprocs / cols;
        RectGrid { rows, cols, rank }
    }

    pub fn row(&self) -> usize {
        self.rank / self.cols
    }

    pub fn col(&self) -> usize {
        self.rank % self.cols
    }

    /// Non-wrapping neighbour; `None` at the boundary.
    pub fn mesh_neighbor(&self, drow: isize, dcol: isize) -> Option<usize> {
        let r = self.row() as isize + drow;
        let c = self.col() as isize + dcol;
        if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
            None
        } else {
            Some(r as usize * self.cols + c as usize)
        }
    }
}

/// CG's rows×cols grid: nprocs = 2^k, cols = 2^⌈k/2⌉, rows = 2^⌊k/2⌋.
#[derive(Clone, Copy, Debug)]
pub struct CgGrid {
    pub rows: usize,
    pub cols: usize,
    pub rank: usize,
}

impl CgGrid {
    pub fn new(rank: usize, nprocs: usize) -> CgGrid {
        assert!(nprocs.is_power_of_two(), "CG needs a power of two");
        let k = nprocs.trailing_zeros() as usize;
        let cols = 1 << k.div_ceil(2);
        let rows = nprocs / cols;
        CgGrid { rows, cols, rank }
    }

    pub fn row(&self) -> usize {
        self.rank / self.cols
    }

    pub fn col(&self) -> usize {
        self.rank % self.cols
    }

    /// The transpose-exchange partner within the row (NPB CG swaps vector
    /// segments with the "mirror" column).
    pub fn exchange_partner(&self) -> usize {
        if self.rows == self.cols {
            // Square grid: transpose position.
            self.col() * self.cols + self.row()
        } else {
            // 2:1 grid: mirror column within the row.
            let mirror = self.cols - 1 - self.col();
            self.row() * self.cols + mirror
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_neighbors_wrap() {
        let g = SquareGrid::new(0, 9); // row 0, col 0
        assert_eq!(g.torus_neighbor(0, 1), 1);
        assert_eq!(g.torus_neighbor(0, -1), 2); // wraps
        assert_eq!(g.torus_neighbor(1, 0), 3);
        assert_eq!(g.torus_neighbor(-1, 0), 6); // wraps
    }

    #[test]
    fn mesh_neighbors_stop_at_boundary() {
        let g = SquareGrid::new(0, 9);
        assert_eq!(g.mesh_neighbor(0, -1), None);
        assert_eq!(g.mesh_neighbor(-1, 0), None);
        assert_eq!(g.mesh_neighbor(0, 1), Some(1));
        let g8 = SquareGrid::new(8, 9); // bottom-right corner
        assert_eq!(g8.mesh_neighbor(0, 1), None);
        assert_eq!(g8.mesh_neighbor(1, 0), None);
        assert_eq!(g8.mesh_neighbor(-1, 0), Some(5));
    }

    #[test]
    #[should_panic(expected = "not a square")]
    fn square_grid_rejects_non_square() {
        SquareGrid::new(0, 8);
    }

    #[test]
    fn cg_grid_shapes() {
        let g = CgGrid::new(0, 8);
        assert_eq!((g.rows, g.cols), (2, 4));
        let g = CgGrid::new(0, 16);
        assert_eq!((g.rows, g.cols), (4, 4));
        let g = CgGrid::new(0, 64);
        assert_eq!((g.rows, g.cols), (8, 8));
    }

    #[test]
    fn cg_exchange_partner_is_symmetric() {
        for &n in &[8usize, 16, 64] {
            for r in 0..n {
                let g = CgGrid::new(r, n);
                let p = g.exchange_partner();
                let gp = CgGrid::new(p, n);
                assert_eq!(
                    gp.exchange_partner(),
                    r,
                    "partner not symmetric at rank {r}/{n}"
                );
            }
        }
    }
}
