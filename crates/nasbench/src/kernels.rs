//! The per-kernel MPI programs: NPB 2.4 communication patterns with a
//! calibrated compute-time model.
//!
//! Message sizes and counts follow the published algorithms:
//!
//! * **BT/SP** — ADI on a square (torus) process grid: three sweep stages
//!   per iteration, each exchanging solution faces with both neighbours of
//!   one grid dimension.
//! * **CG** — ~26 vector-segment exchanges with the transpose partner per
//!   outer iteration, plus two scalar allreduces.
//! * **EP** — pure computation with a handful of small allreduces at the
//!   end (which is why every stack ties on EP except for compute-side
//!   effects).
//! * **FT** — one global transpose (all-to-all of the whole local volume)
//!   per iteration; the bandwidth hog.
//! * **MG** — halo exchanges on every multigrid level, sizes shrinking
//!   with the level.
//! * **LU** — SSOR wavefront: two sweeps per iteration, each pipelining
//!   `nz` planes of *small* messages through the process grid ("LU sends
//!   only a limited percentage of large messages and most of the traffic
//!   is composed of small messages", §4.2).

use bytes::Bytes;
use mpi_ch3::{MpiHandle, Src};
use simnet::SimDuration;

use crate::decomp::{CgGrid, RectGrid, SquareGrid};
use crate::model::{Class, Kernel, KernelParams};

/// Context passed to a kernel iteration.
pub struct KernelCtx<'a> {
    pub mpi: &'a MpiHandle,
    pub params: &'a KernelParams,
    pub class: Class,
    pub nprocs: usize,
    /// Stack compute-time multiplier.
    pub compute_factor: f64,
    /// LU: simulate only this many wavefront planes (the runner corrects
    /// the measured time with the affine pipeline formula; see
    /// [`crate::run::lu_plane_scale`]).
    pub lu_nz_override: Option<usize>,
}

impl KernelCtx<'_> {
    /// One iteration's per-rank compute time.
    fn iter_compute(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.params.iter_compute_secs(self.nprocs) * self.compute_factor,
        )
    }

    fn compute_fraction(&self, frac: f64) -> SimDuration {
        SimDuration::from_secs_f64(
            self.params.iter_compute_secs(self.nprocs) * self.compute_factor * frac,
        )
    }
}

/// Tags (collectives use their own context, so plain numbers suffice).
const TAG_FACE: u32 = 100;
const TAG_CG: u32 = 200;
const TAG_A2A: u32 = 300;
const TAG_MG: u32 = 400;
const TAG_LU_LOW: u32 = 500;
const TAG_LU_HIGH: u32 = 501;

/// Run one iteration of `kernel`.
pub fn run_iteration(kernel: Kernel, k: &KernelCtx<'_>) {
    match kernel {
        Kernel::BT | Kernel::SP => adi_iteration(k),
        Kernel::CG => cg_iteration(k),
        Kernel::EP => ep_iteration(k),
        Kernel::FT => ft_iteration(k),
        Kernel::MG => mg_iteration(k),
        Kernel::LU => lu_iteration(k),
        Kernel::IS => is_iteration(k),
    }
}

/// Exchange `bytes`-sized faces with two partners simultaneously
/// (deadlock-free: receives posted first).
fn exchange(mpi: &MpiHandle, tag: u32, partners: &[(usize, usize)], bytes: usize) {
    // partners: (send_to, recv_from) pairs.
    let payload = Bytes::from(vec![0u8; bytes.max(1)]);
    let mut reqs = Vec::with_capacity(partners.len() * 2);
    for &(_, from) in partners {
        reqs.push(mpi.irecv(Src::Rank(from), tag));
    }
    for &(to, _) in partners {
        reqs.push(mpi.isend_bytes(to, tag, payload.clone()));
    }
    mpi.waitall(&reqs);
}

// ---------------------------------------------------------------------
// BT / SP: ADI sweeps on a square torus grid
// ---------------------------------------------------------------------

fn adi_iteration(k: &KernelCtx<'_>) {
    let grid = SquareGrid::new(k.mpi.rank(), k.nprocs);
    let edge = k.params.base_edge as f64 * k.class.size_factor();
    // Face: edge² cells × 5 solution variables × 8 bytes, split across the
    // q ranks that share the face.
    let face_bytes = (edge * edge * 5.0 * 8.0 / grid.q as f64) as usize;
    // Three sweep stages: x (column neighbours), y (row neighbours),
    // z (column neighbours again — the 3rd dimension is not decomposed).
    let stages: [(isize, isize); 3] = [(0, 1), (1, 0), (0, 1)];
    for (drow, dcol) in stages {
        k.mpi.compute(k.compute_fraction(1.0 / 3.0));
        if grid.q > 1 {
            let fwd = grid.torus_neighbor(drow, dcol);
            let bwd = grid.torus_neighbor(-drow, -dcol);
            exchange(k.mpi, TAG_FACE, &[(fwd, bwd), (bwd, fwd)], face_bytes);
        }
    }
}

// ---------------------------------------------------------------------
// CG
// ---------------------------------------------------------------------

fn cg_iteration(k: &KernelCtx<'_>) {
    let grid = CgGrid::new(k.mpi.rank(), k.nprocs);
    let seg_bytes =
        (k.params.base_edge as f64 * k.class.size_factor() * 8.0 / grid.cols as f64) as usize;
    // ~26 matrix-vector products per outer iteration, each with one
    // transpose exchange.
    const INNER: usize = 26;
    let partner = grid.exchange_partner();
    for _ in 0..INNER {
        k.mpi.compute(k.compute_fraction(1.0 / INNER as f64));
        if partner != k.mpi.rank() {
            exchange(k.mpi, TAG_CG, &[(partner, partner)], seg_bytes);
        }
    }
    // Two scalar reductions (rho, norm).
    k.mpi.allreduce_sum(&[1.0]);
    k.mpi.allreduce_sum(&[1.0]);
}

// ---------------------------------------------------------------------
// EP
// ---------------------------------------------------------------------

fn ep_iteration(k: &KernelCtx<'_>) {
    // Pure compute, then the final counters (q[0..9] and two sums).
    k.mpi.compute(k.iter_compute());
    k.mpi.allreduce_sum(&[0.0; 10]);
    k.mpi.allreduce_sum(&[0.0; 2]);
}

// ---------------------------------------------------------------------
// FT
// ---------------------------------------------------------------------

fn ft_iteration(k: &KernelCtx<'_>) {
    let n = k.nprocs;
    // Total volume: 512³ complex doubles (16 B) scaled by the class work
    // factor (FT's work is ∝ volume).
    let volume = 512.0f64.powi(3) * 16.0 * k.class.work_factor();
    let block = (volume / (n * n) as f64) as usize;
    // Three compute phases (FFT along each dimension) around the global
    // transpose.
    k.mpi.compute(k.compute_fraction(2.0 / 3.0));
    // Round-based personalized all-to-all: bounded memory, same wire
    // traffic as the collective.
    let payload = Bytes::from(vec![0u8; block.max(1)]);
    let rank = k.mpi.rank();
    for i in 1..n {
        let to = (rank + i) % n;
        let from = (rank + n - i) % n;
        let r = k.mpi.irecv(Src::Rank(from), TAG_A2A);
        let s = k.mpi.isend_bytes(to, TAG_A2A, payload.clone());
        k.mpi.waitall(&[r, s]);
    }
    k.mpi.compute(k.compute_fraction(1.0 / 3.0));
}

// ---------------------------------------------------------------------
// MG
// ---------------------------------------------------------------------

fn mg_iteration(k: &KernelCtx<'_>) {
    let n = k.nprocs;
    let rank = k.mpi.rank();
    // Surface divisor ≈ P^(2/3) for a 3D decomposition.
    let surf_div = (n as f64).powf(2.0 / 3.0);
    // V-cycle over levels 9 (512³) down to 2 (4³); compute is dominated by
    // the finest level.
    let mut level_edge = (512.0 * k.class.size_factor()) as usize;
    let mut first = true;
    while level_edge >= 4 {
        let frac = if first { 0.7 } else { 0.3 / 7.0 };
        k.mpi.compute(k.compute_fraction(frac));
        let face = (((level_edge * level_edge) as f64) * 8.0 / surf_div).max(64.0) as usize;
        if n > 1 {
            // Three dimension-pair halo exchanges on rank rings.
            for stride in [1usize, 2, 4] {
                let stride = stride.min(n - 1).max(1);
                let fwd = (rank + stride) % n;
                let bwd = (rank + n - stride) % n;
                if fwd == rank {
                    continue;
                }
                exchange(k.mpi, TAG_MG, &[(fwd, bwd), (bwd, fwd)], face);
            }
        }
        level_edge /= 2;
        first = false;
    }
}

// ---------------------------------------------------------------------
// IS (extension beyond the paper; requires datatype support)
// ---------------------------------------------------------------------

fn is_iteration(k: &KernelCtx<'_>) {
    use mpi_ch3::datatype::Datatype;
    let n = k.nprocs;
    let rank = k.mpi.rank();
    // Bucket-sort ranking: local counting, a histogram allreduce, then the
    // key redistribution (alltoallv — bucket sizes vary per destination).
    k.mpi.compute(k.compute_fraction(0.6));
    // 1024-bucket histogram of f64 counters (NPB uses ints; the wire
    // volume is what matters).
    k.mpi.allreduce_sum(&vec![0.0f64; 1024]);
    // Keys: 4 bytes each, total volume = keys × 4 scaled by class work.
    let total_keys = k.params.base_edge as f64 * k.class.work_factor();
    let avg_block = (total_keys * 4.0 / (n * n) as f64) as usize;
    // Bucket sizes vary ±50% deterministically by (src, dst).
    let blocks: Vec<Bytes> = (0..n)
        .map(|dst| {
            let skew = 0.5 + ((rank * 7 + dst * 13) % 16) as f64 / 16.0;
            Bytes::from(vec![0u8; ((avg_block as f64) * skew) as usize])
        })
        .collect();
    let got = k.mpi.alltoallv(blocks);
    debug_assert_eq!(got.len(), n);
    k.mpi.compute(k.compute_fraction(0.4));
    // Partial verification: exchange a strided sample of ranked keys with
    // the right neighbour using the MPI_Type_vector support — the very
    // feature whose absence excluded IS from the paper's evaluation.
    if n > 1 {
        let sample_ty = Datatype::Vector {
            count: 16,
            blocklen: 1,
            stride: 64,
            element_size: 4,
        };
        let keys = vec![rank as u8; sample_ty.extent(1)];
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        let mut landing = vec![0u8; sample_ty.extent(1)];
        if rank.is_multiple_of(2) {
            k.mpi.send_typed(right, 77, &sample_ty, &keys, 1);
            k.mpi
                .recv_typed(Src::Rank(left), 77, &sample_ty, &mut landing, 1);
        } else {
            k.mpi
                .recv_typed(Src::Rank(left), 77, &sample_ty, &mut landing, 1);
            k.mpi.send_typed(right, 77, &sample_ty, &keys, 1);
        }
        debug_assert_eq!(landing[0], left as u8);
    }
}

// ---------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------

fn lu_iteration(k: &KernelCtx<'_>) {
    // LU decomposes onto a rectangular power-of-two mesh (rows × cols).
    let grid = RectGrid::new(k.mpi.rank(), k.nprocs);
    let nz_full = ((k.params.base_edge as f64 * k.class.size_factor()) as usize).max(8);
    let nz = k.lu_nz_override.unwrap_or(nz_full).min(nz_full);
    // Plane boundary: (edge/cols) cells × 5 vars × 8 B — a few KB.
    let plane_bytes = ((k.params.base_edge as f64 * k.class.size_factor() / grid.cols as f64)
        * 5.0
        * 8.0) as usize;
    // Per-plane compute uses the FULL plane count so the pipeline's
    // compute/communication ratio is authentic even when fewer planes are
    // simulated.
    let plane_dt = SimDuration::from_secs_f64(
        k.params.iter_compute_secs(k.nprocs) * k.compute_factor / (2.0 * nz_full as f64),
    );
    // Lower-triangular sweep: the wavefront flows from (0,0) to (q-1,q-1).
    lu_sweep(k, &grid, nz, plane_bytes, plane_dt, TAG_LU_LOW, false);
    // Upper-triangular sweep: reversed.
    lu_sweep(k, &grid, nz, plane_bytes, plane_dt, TAG_LU_HIGH, true);
}

#[allow(clippy::too_many_arguments)]
fn lu_sweep(
    k: &KernelCtx<'_>,
    grid: &RectGrid,
    nz: usize,
    plane_bytes: usize,
    plane_dt: SimDuration,
    tag: u32,
    reversed: bool,
) {
    let dir: isize = if reversed { -1 } else { 1 };
    let recv_n = grid.mesh_neighbor(-dir, 0);
    let recv_w = grid.mesh_neighbor(0, -dir);
    let send_s = grid.mesh_neighbor(dir, 0);
    let send_e = grid.mesh_neighbor(0, dir);
    let payload = Bytes::from(vec![0u8; plane_bytes.max(1)]);
    for _plane in 0..nz {
        if let Some(n) = recv_n {
            k.mpi.recv(Src::Rank(n), tag);
        }
        if let Some(w) = recv_w {
            k.mpi.recv(Src::Rank(w), tag);
        }
        k.mpi.compute(plane_dt);
        let mut sends = Vec::new();
        if let Some(s) = send_s {
            sends.push(k.mpi.isend_bytes(s, tag, payload.clone()));
        }
        if let Some(e) = send_e {
            sends.push(k.mpi.isend_bytes(e, tag, payload.clone()));
        }
        k.mpi.waitall(&sends);
    }
}
