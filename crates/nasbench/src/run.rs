//! Running a NAS kernel on a simulated cluster and extrapolating to the
//! full benchmark time.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Cluster, Placement, SimTime};

use mpi_ch3::stack::{run_mpi, StackConfig};
use mpi_ch3::MpiHandle;

use crate::kernels::{run_iteration, KernelCtx};
use crate::model::{Class, Kernel, KernelParams};

/// Result of one NAS run.
#[derive(Clone, Debug)]
pub struct NasResult {
    pub kernel: Kernel,
    pub class: Class,
    pub nprocs: usize,
    pub stack: String,
    /// Extrapolated full-benchmark execution time, seconds.
    pub time_s: f64,
    /// Measured per-iteration time, seconds.
    pub iter_s: f64,
    /// Iterations actually simulated.
    pub sim_iters: usize,
}

/// Default simulated iterations per kernel (NPB iterations are
/// statistically identical; a couple suffice for a noise-free simulator).
pub fn default_sim_iters(kernel: Kernel) -> usize {
    match kernel {
        Kernel::EP => 1,
        Kernel::LU => 1,
        _ => 2,
    }
}

/// Run `kernel` at `class` on `nprocs` ranks over `cluster` with `stack`,
/// spreading ranks round-robin (the paper's 8-processes-one-per-node setup
/// generalized). `nprocs` is adjusted 8→9 / 32→36 for BT/SP.
pub fn run_nas(
    cluster: &Cluster,
    stack: &StackConfig,
    kernel: Kernel,
    class: Class,
    nprocs: usize,
    sim_iters: Option<usize>,
) -> NasResult {
    let nprocs = kernel.adjust_procs(nprocs);
    assert!(
        kernel.valid_procs(nprocs),
        "{} cannot run on {nprocs} processes",
        kernel.name()
    );
    let placement = Placement::round_robin(nprocs, cluster);
    let params = KernelParams::of(kernel, class);
    let iters = sim_iters.unwrap_or_else(|| default_sim_iters(kernel)).max(1);
    let iters = iters.min(params.niter);
    let compute_factor = stack.compute_factor;
    // LU: simulate a bounded number of wavefront planes and correct with
    // the affine pipeline formula (see `lu_plane_scale`).
    let (lu_nz_override, lu_scale) = if kernel == Kernel::LU {
        let nz_full = ((params.base_edge as f64 * class.size_factor()) as usize).max(8);
        let nz_sim = nz_full.min(64);
        let grid = crate::decomp::RectGrid::new(0, nprocs);
        (
            Some(nz_sim),
            lu_plane_scale(nz_full, nz_sim, grid.rows + grid.cols - 1),
        )
    } else {
        (None, 1.0)
    };

    let measured: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));
    let m2 = Arc::clone(&measured);
    run_mpi(
        cluster,
        &placement,
        stack,
        nprocs,
        Arc::new(move |mpi: MpiHandle| {
            let kctx = KernelCtx {
                mpi: &mpi,
                params: &params,
                class,
                nprocs,
                compute_factor,
                lu_nz_override,
            };
            mpi.barrier();
            let t0 = mpi.now();
            for _ in 0..iters {
                run_iteration(kernel, &kctx);
            }
            mpi.barrier();
            let t1 = mpi.now();
            if mpi.rank() == 0 {
                *m2.lock() = Some((t0, t1));
            }
        }),
    );
    let (t0, t1) = measured.lock().take().expect("rank 0 must time the run");
    let iter_s = (t1 - t0).as_secs_f64() / iters as f64 * lu_scale;
    NasResult {
        kernel,
        class,
        nprocs,
        stack: stack.name.clone(),
        time_s: iter_s * params.niter as f64,
        iter_s,
        sim_iters: iters,
    }
}

/// Wavefront pipeline correction: a sweep over `nz` planes through a
/// process mesh with diagonal length `diag` (rows + cols − 1) takes
/// `(nz + diag − 1) · cycle` — linear in the plane count plus the pipeline
/// fill. Simulating `nz_sim` planes therefore underestimates the sweep by
/// this ratio.
pub fn lu_plane_scale(nz_full: usize, nz_sim: usize, diag: usize) -> f64 {
    let fill = diag.saturating_sub(1) as f64;
    (nz_full as f64 + fill) / (nz_sim as f64 + fill)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::grid5000_opteron()
    }

    #[test]
    fn cg_class_a_runs_and_scales() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        let r8 = run_nas(&cluster, &stack, Kernel::CG, Class::A, 8, Some(1));
        let r16 = run_nas(&cluster, &stack, Kernel::CG, Class::A, 16, Some(1));
        assert!(r8.time_s > 0.0);
        // Compute dominates: doubling ranks should cut time substantially.
        let speedup = r8.time_s / r16.time_s;
        assert!(
            speedup > 1.4 && speedup < 2.2,
            "CG 8->16 speedup {speedup:.2}"
        );
    }

    #[test]
    fn bt_substitutes_nine_ranks() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        let r = run_nas(&cluster, &stack, Kernel::BT, Class::A, 8, Some(1));
        assert_eq!(r.nprocs, 9);
        assert!(r.time_s > 0.0);
    }

    #[test]
    fn ep_is_compute_bound() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        let r = run_nas(&cluster, &stack, Kernel::EP, Class::A, 8, None);
        let params = KernelParams::of(Kernel::EP, Class::A);
        let pure_compute = params.seq_core_seconds / 8.0;
        // Communication adds well under 1% on EP.
        assert!(
            (r.time_s - pure_compute) / pure_compute < 0.01,
            "EP time {} vs compute {}",
            r.time_s,
            pure_compute
        );
    }

    #[test]
    fn lu_is_small_message_heavy() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        let (out_sent, _) = {
            let placement = Placement::round_robin(4, &cluster);
            let params = KernelParams::of(Kernel::LU, Class::A);
            let out = run_mpi(
                &cluster,
                &placement,
                &stack,
                4,
                Arc::new(move |mpi: MpiHandle| {
                    let kctx = KernelCtx {
                        mpi: &mpi,
                        params: &params,
                        class: Class::A,
                        nprocs: 4,
                        compute_factor: 1.0,
                        lu_nz_override: Some(32),
                    };
                    run_iteration(Kernel::LU, &kctx);
                }),
            );
            (out.nm_stats.iter().map(|s| s.eager_sends).sum::<u64>(), ())
        };
        // One LU iteration on 4 ranks: 2 sweeps × nz planes × pipeline
        // messages, all eager (a few KB each).
        assert!(
            out_sent > 100,
            "LU must send many small messages, got {out_sent}"
        );
    }

    #[test]
    fn ft_moves_volume_proportional_data() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        let r = run_nas(&cluster, &stack, Kernel::FT, Class::A, 8, Some(1));
        assert!(r.time_s > 0.0);
        // FT at class A must still be compute-dominated at 8 ranks.
        let params = KernelParams::of(Kernel::FT, Class::A);
        let pure = params.seq_core_seconds / 8.0;
        assert!(r.time_s < pure * 1.5, "FT {} vs {}", r.time_s, pure);
    }

    #[test]
    fn all_kernels_complete_on_four_or_nine_ranks() {
        let cluster = small_cluster();
        let stack = StackConfig::mpich2_nmad(false);
        for k in Kernel::ALL {
            let n = if matches!(k, Kernel::BT | Kernel::SP) { 9 } else { 4 };
            let r = run_nas(&cluster, &stack, k, Class::A, n, Some(1));
            assert!(r.time_s > 0.0, "{} produced no time", k.name());
        }
    }

    #[test]
    fn pioman_overhead_on_nas_is_small() {
        // §4.2: "the overhead is usually less than 3%".
        let cluster = small_cluster();
        let base = StackConfig::mpich2_nmad(false);
        let piom = StackConfig::mpich2_nmad(true);
        let r0 = run_nas(&cluster, &base, Kernel::CG, Class::A, 8, Some(1));
        let r1 = run_nas(&cluster, &piom, Kernel::CG, Class::A, 8, Some(1));
        let overhead = (r1.time_s - r0.time_s) / r0.time_s;
        assert!(
            overhead.abs() < 0.03,
            "PIOMan NAS overhead {:.1}% exceeds 3%",
            overhead * 100.0
        );
    }
}
