//! Kernel/class parameter tables and the compute-time calibration.

/// The NAS kernels. The paper evaluates seven (§4.2) and excludes IS
/// ("IS needs datatypes support and MPICH2-NewMadeleine does not handle
/// yet this functionality"); this reproduction implements the datatype
/// support (`mpi_ch3::datatype`) and ships IS as an extension —
/// [`Kernel::ALL`] stays paper-faithful, [`Kernel::ALL_WITH_IS`] adds it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    BT,
    CG,
    EP,
    FT,
    SP,
    MG,
    LU,
    IS,
}

impl Kernel {
    /// The seven kernels of Fig. 8.
    pub const ALL: [Kernel; 7] = [
        Kernel::BT,
        Kernel::CG,
        Kernel::EP,
        Kernel::FT,
        Kernel::SP,
        Kernel::MG,
        Kernel::LU,
    ];

    /// All eight, including the IS extension.
    pub const ALL_WITH_IS: [Kernel; 8] = [
        Kernel::BT,
        Kernel::CG,
        Kernel::EP,
        Kernel::FT,
        Kernel::SP,
        Kernel::MG,
        Kernel::LU,
        Kernel::IS,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Kernel::BT => "BT",
            Kernel::CG => "CG",
            Kernel::EP => "EP",
            Kernel::FT => "FT",
            Kernel::SP => "SP",
            Kernel::MG => "MG",
            Kernel::LU => "LU",
            Kernel::IS => "IS",
        }
    }

    /// BT and SP require a square process count; the others a power of
    /// two. The paper substitutes 9 and 36 for 8 and 32 accordingly.
    pub fn valid_procs(&self, n: usize) -> bool {
        match self {
            Kernel::BT | Kernel::SP => {
                let q = (n as f64).sqrt().round() as usize;
                q * q == n
            }
            _ => n.is_power_of_two(),
        }
    }

    /// The paper's process-count substitution: 8→9 and 32→36 for the
    /// square-grid kernels.
    pub fn adjust_procs(&self, n: usize) -> usize {
        match self {
            Kernel::BT | Kernel::SP => match n {
                8 => 9,
                32 => 36,
                other => other,
            },
            _ => n,
        }
    }
}

/// NPB problem classes evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    A,
    B,
    C,
}

impl Class {
    pub fn name(&self) -> &'static str {
        match self {
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }

    /// Work relative to class C (NPB problem-size ratios, approximate).
    pub fn work_factor(&self) -> f64 {
        match self {
            Class::A => 0.05,
            Class::B => 0.22,
            Class::C => 1.0,
        }
    }

    /// Linear message-size scale relative to class C (≈ cube root of the
    /// work ratio for the 3D kernels).
    pub fn size_factor(&self) -> f64 {
        match self {
            Class::A => 0.4,
            Class::B => 0.63,
            Class::C => 1.0,
        }
    }
}

/// Per-(kernel, class) parameters.
#[derive(Clone, Copy, Debug)]
pub struct KernelParams {
    /// Full iteration count (what the extrapolation scales to).
    pub niter: usize,
    /// Total sequential work in core-seconds at the modelled node's speed.
    /// Calibrated so class C at 8/9 processes lands in the range Fig. 8(a)
    /// shows (see DESIGN.md §4).
    pub seq_core_seconds: f64,
    /// Base linear problem edge (class C), driving message sizes.
    pub base_edge: usize,
}

impl KernelParams {
    pub fn of(kernel: Kernel, class: Class) -> KernelParams {
        // Class C table; niter is class-independent in NPB for most
        // kernels (CG's differs but we keep one representative count).
        let (niter, seq_c, edge) = match kernel {
            Kernel::BT => (200, 6_300.0, 162),
            Kernel::SP => (400, 7_200.0, 162),
            Kernel::LU => (250, 4_000.0, 162),
            Kernel::CG => (75, 3_200.0, 150_000),
            Kernel::FT => (20, 2_800.0, 512),
            Kernel::MG => (20, 800.0, 512),
            Kernel::EP => (1, 1_200.0, 1 << 16),
            // IS class C: 2^27 keys, 10 rankings; the lightest kernel.
            Kernel::IS => (10, 120.0, 1 << 27),
        };
        KernelParams {
            niter,
            seq_core_seconds: seq_c * class.work_factor(),
            base_edge: edge,
        }
    }

    /// Per-rank compute seconds for one iteration on `nprocs` processes.
    pub fn iter_compute_secs(&self, nprocs: usize) -> f64 {
        self.seq_core_seconds / (self.niter as f64 * nprocs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_count_rules() {
        assert!(Kernel::BT.valid_procs(9));
        assert!(!Kernel::BT.valid_procs(8));
        assert_eq!(Kernel::BT.adjust_procs(8), 9);
        assert_eq!(Kernel::SP.adjust_procs(32), 36);
        assert_eq!(Kernel::CG.adjust_procs(32), 32);
        assert!(Kernel::CG.valid_procs(64));
        assert!(!Kernel::CG.valid_procs(36));
    }

    #[test]
    fn class_scaling_is_monotonic() {
        assert!(Class::A.work_factor() < Class::B.work_factor());
        assert!(Class::B.work_factor() < Class::C.work_factor());
        assert_eq!(Class::C.size_factor(), 1.0);
    }

    #[test]
    fn class_c_eight_proc_times_match_figure_ballpark() {
        // Fig. 8(a) axis runs 50..1000 s; each kernel's extrapolated
        // compute-only time at 8/9 ranks must land inside it.
        for k in Kernel::ALL {
            let p = KernelParams::of(k, Class::C);
            let n = k.adjust_procs(8);
            let t = p.iter_compute_secs(n) * p.niter as f64;
            assert!(
                (50.0..=1000.0).contains(&t),
                "{} class C {}p compute {t:.0}s outside figure range",
                k.name(),
                n
            );
        }
    }

    #[test]
    fn iter_compute_scales_inversely_with_procs() {
        let p = KernelParams::of(Kernel::BT, Class::C);
        let t9 = p.iter_compute_secs(9);
        let t36 = p.iter_compute_secs(36);
        assert!((t9 / t36 - 4.0).abs() < 1e-9);
    }
}
