//! Integration tests of the PIOMan server driving simulated completions.

use std::sync::Arc;

use parking_lot::Mutex;
use piom::{DetectionMethod, LTask, PiomConfig, PiomServer};
use simnet::{SimBuilder, SimDuration, SimSemaphore, SimTime};

/// A rank blocks on a semaphore; a network event at t=5µs kicks the
/// server; the ltask signals. The rank must wake at 5µs + net_sync.
#[test]
fn blocked_rank_wakes_via_ltask() {
    let mut sim = SimBuilder::new().build();
    let server = PiomServer::new(PiomConfig::default());
    let sem = SimSemaphore::new("wait");
    let sem2 = sem.clone();
    server.register_fn(
        "signal-waiter",
        Arc::new(move |s| sem2.signal(s)),
    );
    let woke_at = Arc::new(Mutex::new(SimTime::ZERO));
    let w2 = Arc::clone(&woke_at);
    sim.spawn_rank("app", move |ctx| {
        sem.wait(&ctx);
        *w2.lock() = ctx.now();
    });
    let sched = sim.scheduler();
    let sv = Arc::clone(&server);
    sched.schedule_at(SimTime(5_000), move |s| sv.kick_net(s));
    sim.run().unwrap();
    assert_eq!(*woke_at.lock(), SimTime(7_000)); // 5µs + 2µs sync
}

/// Several ltasks and several kicks: every kick runs all ltasks once.
#[test]
fn kicks_fan_out_to_all_ltasks() {
    let sim = SimBuilder::new().build();
    let server = PiomServer::new(PiomConfig::default());
    let counts: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(vec![0; 3]));
    let tasks: Vec<LTask> = (0..3)
        .map(|i| {
            let counts = Arc::clone(&counts);
            LTask::new(format!("t{i}"), Arc::new(move |_| counts.lock()[i] += 1))
        })
        .collect();
    for t in &tasks {
        server.register(t.clone());
    }
    let sched = sim.scheduler();
    for k in 0..4u64 {
        let sv = Arc::clone(&server);
        sched.schedule_at(SimTime(k * 1_000), move |s| sv.kick_shm(s));
    }
    sim.run().unwrap();
    assert_eq!(*counts.lock(), vec![4, 4, 4]);
    assert_eq!(tasks[0].runs(), 4);
    assert_eq!(server.kicks(), 4);
}

/// Timer-driven detection quantizes reaction to the period; idle-core
/// polling reacts at the sync cost. Measure the gap directly.
#[test]
fn detection_method_controls_reaction_latency() {
    let reaction = |method: DetectionMethod| -> u64 {
        let sim = SimBuilder::new().build();
        let server = PiomServer::new(PiomConfig {
            method,
            ..PiomConfig::default()
        });
        let reacted = Arc::new(Mutex::new(None));
        let r2 = Arc::clone(&reacted);
        server.register_fn(
            "note",
            Arc::new(move |s| {
                let mut r = r2.lock();
                if r.is_none() {
                    *r = Some(s.now());
                }
            }),
        );
        let sched = sim.scheduler();
        server.start(&sched);
        let sv = Arc::clone(&server);
        // The "event" fires at 3µs.
        sched.schedule_at(SimTime(3_000), move |s| sv.kick_net(s));
        let sv2 = Arc::clone(&server);
        sched.schedule_at(SimTime(500_000), move |_| sv2.stop());
        sim.run().unwrap();
        let t = reacted.lock().expect("never reacted");
        t.as_nanos()
    };
    let idle = reaction(DetectionMethod::IdleCorePolling);
    assert_eq!(idle, 5_000); // 3µs event + 2µs sync
    let timer = reaction(DetectionMethod::TimerDriven(SimDuration::micros(50)));
    assert_eq!(timer, 50_000); // first tick
    assert!(timer > idle);
}
