//! # piom — the PIOMan I/O event manager
//!
//! A reimplementation of PIOMan (Trahay, Denis, Aumage, Namyst — the paper's
//! reference [15]): "an event detection service that guarantees a predefined
//! level of reactivity … the most appropriate detection method (polling or
//! interrupt-based blocking call) is called depending on the context".
//!
//! In the integration (§3.3) PIOMan becomes the *global polling authority*:
//! both NewMadeleine's network events and Nemesis' shared-memory mailboxes
//! are detected centrally, application threads block on semaphores instead
//! of busy-waiting, and progress runs in the background "during context
//! switches, timer interrupts or when a CPU is idle".
//!
//! ## What the simulation models
//!
//! * **ltasks** ([`ltask`]): the registered progress tasks PIOMan runs on
//!   every detection opportunity.
//! * **The server** ([`server`]): reacts to event *kicks* from the network
//!   (NewMadeleine's hook) and from shared memory (the Nemesis mailbox
//!   hook), each after the measured synchronization cost — ≈2 µs for the
//!   network path, ≈450 ns for shared memory (§4.1.2) — and, in
//!   timer-driven mode, on a periodic tick.
//! * **Detection methods** ([`server::DetectionMethod`]): `IdleCorePolling`
//!   reacts to every event (an idle core continuously polls — the mode that
//!   produces the overlap of Fig. 7); `TimerDriven` only reacts on its
//!   period (the degraded mode when every core is computing).
//! * **Real threads** ([`real_threads`]): an actual OS-thread background
//!   progress engine demonstrating the same architecture outside the
//!   simulator (used by the `overlap_compute` example's self-check).
//!
//! Blocking primitives: rank code waits on [`simnet::SimSemaphore`]s and
//! the server's ltasks signal them — the "semaphore-like primitives"
//! replacing busy-wait loops (§3.3.2).

pub mod ltask;
pub mod real_threads;
pub mod server;

pub use ltask::LTask;
pub use real_threads::{BackgroundProgress, WorkerTeam};
pub use server::{DetectionMethod, PiomConfig, PiomServer, ProgressFn};
