//! A real-OS-thread background progress engine.
//!
//! The simulator models PIOMan's timing; this module demonstrates the same
//! architecture with actual concurrency: a dedicated progress thread (the
//! "idle core") repeatedly invokes a progress closure while application
//! threads compute, exactly the division of labour of §2.2.2 ("the
//! submission of data is performed by idle cores when it is possible,
//! reducing the application's threads' workload").
//!
//! Used by the `overlap_compute` example and by tests that validate the
//! engine against real `std::thread` concurrency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread driving a progress function until stopped.
pub struct BackgroundProgress {
    stop: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundProgress {
    /// Spawn the progress thread. `progress` is called in a tight loop with
    /// `pause` between invocations (use `Duration::ZERO` for pure busy
    /// polling on a dedicated core).
    pub fn spawn(pause: Duration, mut progress: impl FnMut() + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let iterations = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let iters2 = Arc::clone(&iterations);
        let handle = std::thread::Builder::new()
            .name("piom-progress".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    progress();
                    iters2.fetch_add(1, Ordering::Relaxed);
                    if pause > Duration::ZERO {
                        std::thread::sleep(pause);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
            .expect("failed to spawn progress thread");
        BackgroundProgress {
            stop,
            iterations,
            handle: Some(handle),
        }
    }

    /// Number of progress iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Stop and join the thread. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BackgroundProgress {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A set of named worker threads spawned together and joined together.
///
/// The threaded MPI stack (`mpi_ch3::threaded`) uses one team for its
/// producer (application) threads and one for its per-VC consumer
/// (progress) threads; benches and stress tests join both and fold the
/// per-thread results. Join order is spawn order, so result vectors line
/// up with worker indices.
pub struct WorkerTeam<T> {
    handles: Vec<JoinHandle<T>>,
}

impl<T: Send + 'static> WorkerTeam<T> {
    /// Spawn `count` threads named `{prefix}-{i}`. `mk` is called once per
    /// worker index on the calling thread to build that worker's closure
    /// (capture per-worker state there; the closure itself runs on the new
    /// thread).
    pub fn spawn<F, G>(count: usize, prefix: &str, mut mk: F) -> WorkerTeam<T>
    where
        F: FnMut(usize) -> G,
        G: FnOnce() -> T + Send + 'static,
    {
        let handles = (0..count)
            .map(|i| {
                let body = mk(i);
                std::thread::Builder::new()
                    .name(format!("{prefix}-{i}"))
                    .spawn(body)
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerTeam { handles }
    }

    /// Number of workers in the team.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Join every worker, returning results in spawn order.
    ///
    /// # Panics
    /// Propagates a worker panic (the panic payload is resumed on the
    /// joining thread) so a failed assertion inside a worker fails the
    /// test that owns the team instead of vanishing.
    pub fn join(self) -> Vec<T> {
        self.handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::queue::SegQueue;

    #[test]
    fn progress_runs_while_main_thread_computes() {
        let queue: Arc<SegQueue<u32>> = Arc::new(SegQueue::new());
        let q2 = Arc::clone(&queue);
        let drained = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&drained);
        let mut bg = BackgroundProgress::spawn(Duration::ZERO, move || {
            while q2.pop().is_some() {
                d2.fetch_add(1, Ordering::Relaxed);
            }
        });
        // "Application thread" produces work while "computing".
        for i in 0..10_000 {
            queue.push(i);
        }
        // Wait for the background thread to drain everything.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while drained.load(Ordering::Relaxed) < 10_000 {
            assert!(
                std::time::Instant::now() < deadline,
                "background progress stalled at {}",
                drained.load(Ordering::Relaxed)
            );
            std::thread::yield_now();
        }
        bg.stop();
        assert_eq!(drained.load(Ordering::Relaxed), 10_000);
        assert!(bg.iterations() > 0);
    }

    #[test]
    fn worker_team_results_line_up_with_indices() {
        let shared = Arc::new(AtomicU64::new(0));
        let team = WorkerTeam::spawn(8, "wt-test", |i| {
            let shared = Arc::clone(&shared);
            move || {
                shared.fetch_add(1, Ordering::Relaxed);
                i * 10
            }
        });
        assert_eq!(team.len(), 8);
        let results = team.join();
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(shared.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let mut bg = BackgroundProgress::spawn(Duration::from_micros(10), || {});
        bg.stop();
        bg.stop();
        drop(bg); // must not hang or double-join
    }
}
