//! ltasks: the unit of background progress work PIOMan schedules.
//!
//! Each subsystem that wants progression registers an ltask; the server
//! runs every registered ltask on each detection opportunity (event kick or
//! timer tick). In the MPICH2 integration there are typically two: "poll
//! NewMadeleine" and "poll the Nemesis shared-memory mailboxes", plus the
//! MPI layer's completion task.

use std::sync::Arc;

use simnet::Scheduler;

/// The work an ltask performs, on the engine thread.
pub type LTaskFn = Arc<dyn Fn(&Scheduler) + Send + Sync>;

/// A named background progress task.
#[derive(Clone)]
pub struct LTask {
    name: Arc<str>,
    f: LTaskFn,
    /// Invocation counter (diagnostics).
    runs: Arc<std::sync::atomic::AtomicU64>,
}

impl LTask {
    pub fn new(name: impl Into<Arc<str>>, f: LTaskFn) -> LTask {
        LTask {
            name: name.into(),
            f,
            runs: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times this ltask has run.
    pub fn runs(&self) -> u64 {
        self.runs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Execute the task.
    pub fn run(&self, sched: &Scheduler) {
        self.runs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (self.f)(sched);
    }
}

impl std::fmt::Debug for LTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LTask({}, runs={})", self.name, self.runs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simnet::{SimBuilder, SimTime};

    #[test]
    fn ltask_runs_and_counts() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let log = Arc::new(Mutex::new(0));
        let l2 = Arc::clone(&log);
        let t = LTask::new("test", Arc::new(move |_| *l2.lock() += 1));
        assert_eq!(t.name(), "test");
        assert_eq!(t.runs(), 0);
        t.run(&sched);
        t.run(&sched);
        assert_eq!(*log.lock(), 2);
        assert_eq!(t.runs(), 2);
        let _ = SimTime::ZERO;
    }
}
