//! The PIOMan server: the global polling authority of §3.3.1.
//!
//! "In order to fairly make progress both intra-node and inter-node
//! communication, it is necessary to centralize the detection of
//! communication completions … the whole software stack benefits from a
//! global view of both intra-node and inter-node communication flows."
//!
//! The server owns the registered [`LTask`]s and runs all of them on each
//! detection opportunity:
//!
//! * a **network kick** (NewMadeleine accepted a packet or a NIC finished a
//!   transfer) — reacted to after [`PiomConfig::net_sync`], the ≈2 µs
//!   "stronger synchronization … lists of requests protected from
//!   concurrent accesses, network drivers not thread-safe" cost of §4.1.2;
//! * a **shared-memory kick** (a Nemesis mailbox counter was raised) —
//!   after [`PiomConfig::shm_sync`] (≈450 ns);
//! * in [`DetectionMethod::TimerDriven`] mode, a periodic tick — the
//!   degraded path when no core is idle ("context switches, timer
//!   interrupts").

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Scheduler, SimDuration};

use crate::ltask::{LTask, LTaskFn};

/// Re-exported ltask function type (what the MPI glue registers).
pub type ProgressFn = LTaskFn;

/// How completions are detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectionMethod {
    /// An idle core polls continuously: every kick is reacted to after just
    /// the synchronization cost. This is the configuration the paper
    /// evaluates ("the submission of data is thus performed by idle cores
    /// when it is possible", §2.2.2) and the one that overlaps
    /// communication with computation.
    IdleCorePolling,
    /// No idle core: progress only happens on a periodic scheduler tick
    /// (context switches / timer interrupts), with this period.
    TimerDriven(SimDuration),
}

/// PIOMan tuning knobs, calibrated from §4.1.2.
#[derive(Clone, Copy, Debug)]
pub struct PiomConfig {
    /// Synchronization cost on the shared-memory detection path (~450 ns).
    pub shm_sync: SimDuration,
    /// Synchronization cost on the network detection path (~2 µs).
    pub net_sync: SimDuration,
    pub method: DetectionMethod,
}

impl Default for PiomConfig {
    fn default() -> Self {
        PiomConfig {
            shm_sync: SimDuration::nanos(450),
            net_sync: SimDuration::nanos(2_000),
            method: DetectionMethod::IdleCorePolling,
        }
    }
}

/// The per-process progress server.
pub struct PiomServer {
    cfg: PiomConfig,
    ltasks: Mutex<Vec<LTask>>,
    stopped: AtomicBool,
    timer_running: AtomicBool,
    /// An ltask pass is scheduled but has not run yet (idle-core mode).
    /// Kicks arriving while set are coalesced into that pass: it fires
    /// after their simulated instant (the pending pass was scheduled no
    /// more than one sync cost ago), so it observes their work — one poll
    /// pass servicing a burst of events, exactly what a real polling core
    /// does. Without this, every NIC event fans out into one scheduled
    /// pass per co-located rank and event counts grow with node width.
    pass_pending: AtomicBool,
    kicks: AtomicU64,
    /// Completed `run_ltasks` passes (the watchdog's progress signal).
    runs: AtomicU64,
    watchdog_running: AtomicBool,
    /// `runs` snapshot at the last watchdog inspection.
    watchdog_seen: AtomicU64,
    /// Stall detections: watchdog periods in which no ltask pass happened.
    rekicks: AtomicU64,
    /// Observability handle (installed by the stack glue after
    /// construction; defaults to the inert handle).
    rec: Mutex<obs::RankRec>,
}

impl PiomServer {
    pub fn new(cfg: PiomConfig) -> Arc<PiomServer> {
        Arc::new(PiomServer {
            cfg,
            ltasks: Mutex::new(Vec::new()),
            stopped: AtomicBool::new(false),
            timer_running: AtomicBool::new(false),
            pass_pending: AtomicBool::new(false),
            kicks: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            watchdog_running: AtomicBool::new(false),
            watchdog_seen: AtomicU64::new(0),
            rekicks: AtomicU64::new(0),
            rec: Mutex::new(obs::RankRec::off()),
        })
    }

    /// Install the observability handle this server stamps its events with
    /// (kicks, ltask passes, watchdog re-kicks).
    pub fn set_recorder(&self, rec: obs::RankRec) {
        *self.rec.lock() = rec;
    }

    pub fn config(&self) -> &PiomConfig {
        &self.cfg
    }

    /// Register a progress task. Tasks run in registration order.
    pub fn register(&self, task: LTask) {
        self.ltasks.lock().push(task);
    }

    /// Convenience: register a closure as an ltask.
    pub fn register_fn(&self, name: &str, f: ProgressFn) -> LTask {
        let task = LTask::new(name, f);
        self.register(task.clone());
        task
    }

    /// Total kicks received (diagnostics).
    pub fn kicks(&self) -> u64 {
        self.kicks.load(Ordering::Relaxed)
    }

    /// Watchdog stall detections: periods with no ltask pass that forced a
    /// re-kick (diagnostics).
    pub fn rekicks(&self) -> u64 {
        self.rekicks.load(Ordering::Relaxed)
    }

    /// Run every registered ltask now.
    pub fn run_ltasks(&self, sched: &Scheduler) {
        if self.stopped.load(Ordering::Acquire) {
            return;
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
        // Clone out so ltasks may register further ltasks without deadlock.
        let tasks: Vec<LTask> = self.ltasks.lock().clone();
        {
            let rec = self.rec.lock();
            rec.engine(
                sched.now().0,
                obs::EngineEvent::PiomLtaskPass {
                    tasks: tasks.len() as u32,
                },
            );
            rec.inc("piom.ltask_passes", 1);
        }
        for t in &tasks {
            t.run(sched);
        }
    }

    /// A network event happened (NewMadeleine hook): react after the
    /// network synchronization cost — if an idle core is polling. In
    /// timer-driven mode the event waits for the next tick.
    pub fn kick_net(self: &Arc<Self>, sched: &Scheduler) {
        {
            let rec = self.rec.lock();
            rec.engine(sched.now().0, obs::EngineEvent::PiomKick { net: true });
            rec.inc("piom.kicks.net", 1);
        }
        self.kick(sched, self.cfg.net_sync);
    }

    /// A shared-memory mailbox was raised (Nemesis hook).
    pub fn kick_shm(self: &Arc<Self>, sched: &Scheduler) {
        {
            let rec = self.rec.lock();
            rec.engine(sched.now().0, obs::EngineEvent::PiomKick { net: false });
            rec.inc("piom.kicks.shm", 1);
        }
        self.kick(sched, self.cfg.shm_sync);
    }

    fn kick(self: &Arc<Self>, sched: &Scheduler, sync: SimDuration) {
        self.kicks.fetch_add(1, Ordering::Relaxed);
        match self.cfg.method {
            DetectionMethod::IdleCorePolling => {
                // Coalesce: if a pass is already on the calendar it will
                // fire after this kick's instant and see its work; a lone
                // kick still reacts after exactly the sync cost.
                if self.pass_pending.swap(true, Ordering::AcqRel) {
                    return;
                }
                let server = Arc::clone(self);
                sched.schedule_in(sync, move |s| {
                    // Clear before running: kicks raised *by* this pass
                    // (completions cascading into new submissions) must
                    // schedule a fresh pass rather than be swallowed.
                    server.pass_pending.store(false, Ordering::Release);
                    server.run_ltasks(s);
                });
            }
            DetectionMethod::TimerDriven(_) => {
                // The periodic tick will pick the event up.
            }
        }
    }

    /// Start the periodic tick (no-op for idle-core polling). Idempotent.
    pub fn start(self: &Arc<Self>, sched: &Scheduler) {
        if let DetectionMethod::TimerDriven(period) = self.cfg.method {
            if !self.timer_running.swap(true, Ordering::AcqRel) {
                self.tick(sched, period);
            }
        }
    }

    fn tick(self: &Arc<Self>, sched: &Scheduler, period: SimDuration) {
        if self.stopped.load(Ordering::Acquire) {
            return;
        }
        let server = Arc::clone(self);
        sched.schedule_in(period, move |s| {
            server.run_ltasks(s);
            server.tick(s, period);
        });
    }

    /// Start the stall watchdog: every `period`, if no ltask pass ran since
    /// the previous inspection (the kick chain died — e.g. a lost packet
    /// means no NIC event will ever fire the NewMadeleine hook again), run
    /// the ltasks anyway. This is what lets a blocked `wait()` recover under
    /// fault injection: the re-kicked ltasks drive `NmCore::schedule`, whose
    /// retransmission sweep puts the lost traffic back on the wire.
    /// Idempotent; ends when the server is stopped.
    pub fn enable_watchdog(self: &Arc<Self>, sched: &Scheduler, period: SimDuration) {
        assert!(period > SimDuration::ZERO, "watchdog needs a nonzero period");
        if !self.watchdog_running.swap(true, Ordering::AcqRel) {
            self.watchdog_seen
                .store(self.runs.load(Ordering::Relaxed), Ordering::Relaxed);
            self.watchdog_tick(sched, period);
        }
    }

    fn watchdog_tick(self: &Arc<Self>, sched: &Scheduler, period: SimDuration) {
        if self.stopped.load(Ordering::Acquire) {
            self.watchdog_running.store(false, Ordering::Release);
            return;
        }
        let server = Arc::clone(self);
        sched.schedule_in(period, move |s| {
            let runs = server.runs.load(Ordering::Relaxed);
            if server.watchdog_seen.swap(runs, Ordering::Relaxed) == runs
                && !server.stopped.load(Ordering::Acquire)
            {
                server.rekicks.fetch_add(1, Ordering::Relaxed);
                {
                    let rec = server.rec.lock();
                    rec.engine(s.now().0, obs::EngineEvent::PiomRekick);
                    rec.inc("piom.rekicks", 1);
                }
                server.run_ltasks(s);
                server.watchdog_seen
                    .store(server.runs.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            server.watchdog_tick(s, period);
        });
    }

    /// Stop all background activity (teardown).
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use simnet::{SimBuilder, SimTime};

    fn counter_task(log: &Arc<PlMutex<Vec<SimTime>>>) -> ProgressFn {
        let log = Arc::clone(log);
        Arc::new(move |s: &Scheduler| log.lock().push(s.now()))
    }

    #[test]
    fn net_kick_reacts_after_sync_cost() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        let s2 = Arc::clone(&server);
        sched.schedule_at(SimTime(1_000), move |s| s2.kick_net(s));
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec![SimTime(3_000)]); // 1us + 2us sync
        assert_eq!(server.kicks(), 1);
    }

    #[test]
    fn shm_kick_uses_cheaper_sync() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        let s2 = Arc::clone(&server);
        sched.schedule_at(SimTime::ZERO, move |s| s2.kick_shm(s));
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec![SimTime(450)]);
    }

    #[test]
    fn all_ltasks_run_in_order() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let order = Arc::new(PlMutex::new(Vec::new()));
        for name in ["a", "b", "c"] {
            let order = Arc::clone(&order);
            server.register_fn(name, Arc::new(move |_| order.lock().push(name)));
        }
        server.run_ltasks(&sched);
        assert_eq!(*order.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn timer_mode_ignores_kicks_until_tick() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig {
            method: DetectionMethod::TimerDriven(SimDuration::micros(10)),
            ..Default::default()
        });
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        server.start(&sched);
        let s2 = Arc::clone(&server);
        // Kick at 1us: must NOT trigger a run at 3us; first run is the
        // 10us tick.
        sched.schedule_at(SimTime(1_000), move |s| s2.kick_net(s));
        let s3 = Arc::clone(&server);
        sched.schedule_at(SimTime(25_000), move |_| s3.stop());
        sim.run().unwrap();
        let runs = log.lock();
        assert_eq!(runs.first(), Some(&SimTime(10_000)));
        assert!(runs.iter().all(|t| t.as_nanos() % 10_000 == 0));
    }

    #[test]
    fn stop_halts_timer_and_kicks() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        server.stop();
        let s2 = Arc::clone(&server);
        sched.schedule_at(SimTime::ZERO, move |s| s2.kick_net(s));
        sim.run().unwrap();
        assert!(log.lock().is_empty(), "stopped server must not run ltasks");
    }

    #[test]
    fn watchdog_rekicks_when_kicks_stagnate() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        // No kick ever arrives (all packets "lost"): only the watchdog can
        // run the ltasks.
        server.enable_watchdog(&sched, SimDuration::micros(10));
        let s2 = Arc::clone(&server);
        sched.schedule_at(SimTime(45_000), move |_| s2.stop());
        sim.run().unwrap();
        assert!(
            server.rekicks() >= 3,
            "stalled server must be re-kicked (got {})",
            server.rekicks()
        );
        assert!(!log.lock().is_empty());
    }

    #[test]
    fn watchdog_stays_quiet_while_kicks_flow() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let log = Arc::new(PlMutex::new(Vec::new()));
        server.register_fn("count", counter_task(&log));
        server.enable_watchdog(&sched, SimDuration::micros(10));
        // A kick in every watchdog period: never stalled, never re-kicked.
        for i in 0..7u64 {
            let s2 = Arc::clone(&server);
            sched.schedule_at(SimTime(i * 5_000), move |s| s2.kick_net(s));
        }
        let s3 = Arc::clone(&server);
        sched.schedule_at(SimTime(38_000), move |_| s3.stop());
        sim.run().unwrap();
        assert_eq!(server.rekicks(), 0);
        assert_eq!(log.lock().len(), 7);
    }

    #[test]
    fn ltask_may_register_ltask_without_deadlock() {
        let sim = SimBuilder::new().build();
        let sched = sim.scheduler();
        let server = PiomServer::new(PiomConfig::default());
        let s2 = Arc::clone(&server);
        let hit = Arc::new(PlMutex::new(false));
        let h2 = Arc::clone(&hit);
        server.register_fn(
            "registrar",
            Arc::new(move |_s| {
                let h3 = Arc::clone(&h2);
                s2.register_fn("child", Arc::new(move |_| *h3.lock() = true));
            }),
        );
        server.run_ltasks(&sched); // registers child
        server.run_ltasks(&sched); // runs child
        assert!(*hit.lock());
    }
}
