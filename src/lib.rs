//! Umbrella crate for the MPICH2-NewMadeleine reproduction workspace.
//!
//! Re-exports the individual crates under one roof so the examples and the
//! workspace-level integration tests can `use mpich2_nmad_repro::...`.

pub use baselines;
pub use mpi_ch3;
pub use obs;
pub use nasbench;
pub use nemesis;
pub use netpipe;
pub use nmad;
pub use piom;
pub use simnet;

pub mod sim_harness {
    //! Seeded fault-injection scenario harness.
    //!
    //! One [`Scenario`] is a (workload × fault schedule × master seed)
    //! triple. [`Scenario::run`] builds the paper's MPICH2-NMad stack with
    //! the corresponding [`FaultPlan`], runs the workload to completion —
    //! the rank programs themselves assert byte-exact, exactly-once,
    //! per-sender-in-order delivery, so a run that returns at all has
    //! already proven the transport correct under that schedule — and
    //! distils the run into a [`Fingerprint`]. Because the whole stack is
    //! a deterministic discrete-event simulation and every random stream
    //! (fabric jitter, fault coin-flips) derives from the master seed,
    //! equal scenarios must yield bit-identical fingerprints; the replay
    //! tests in `tests/simulation.rs` pin that down.

    use crate::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
    use crate::mpi_ch3::{MpiHandle, Src};
    use crate::nmad::core::NmStats;
    use crate::simnet::{Cluster, CopySnapshot, FaultCounters, FaultPlan, FaultSpec, Placement};

    /// Which traffic pattern a scenario drives.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Workload {
        /// Bidirectional mixed-size ladder between two remote ranks:
        /// eager, aggregated-eager and rendezvous paths, several rounds
        /// per tag so per-sender ordering is observable.
        SendRecv,
        /// Four remote senders feeding one `Src::Any` receiver; headers
        /// carry (sender, index) so the receiver can check per-sender
        /// order and exactly-once delivery independently of matching.
        AnySource,
        /// Large rendezvous transfers split across both cluster rails by
        /// the balanced multirail strategy.
        Multirail,
    }

    /// A replayable fault-injection run.
    #[derive(Clone, Copy, Debug)]
    pub struct Scenario {
        pub seed: u64,
        pub spec: FaultSpec,
        pub workload: Workload,
        pub pioman: bool,
    }

    /// Replay identity of one run. Two executions of the same [`Scenario`]
    /// must produce bit-identical fingerprints — simulated end time, event
    /// count, every per-rank NewMadeleine counter, the fabric's per-rail
    /// message/byte totals, the fault plan's injection counters, and a
    /// hash of every payload byte the ranks received.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Fingerprint {
        pub final_time_nanos: u64,
        pub events: u64,
        pub nm_stats: Vec<NmStats>,
        pub fault_counters: Option<FaultCounters>,
        pub rail_counters: Vec<(u64, u64)>,
        pub piom_rekicks: u64,
        pub payload_hash: u64,
        /// Job-wide copy-accounting totals: memcpys, bytes memcpied,
        /// allocations and zero-copy shares. Part of the replay identity —
        /// the copy discipline must be as deterministic as the payloads.
        pub copy: CopySnapshot,
    }

    impl Fingerprint {
        /// Total transport retransmissions across all ranks.
        pub fn total_retries(&self) -> u64 {
            self.nm_stats.iter().map(|s| s.total_retries()).sum()
        }
    }

    impl Scenario {
        pub fn new(seed: u64, spec: FaultSpec, workload: Workload, pioman: bool) -> Scenario {
            Scenario {
                seed,
                spec,
                workload,
                pioman,
            }
        }

        /// Run under the scenario's fault schedule (retry layer on when
        /// the schedule can lose or duplicate packets).
        pub fn run(&self) -> Fingerprint {
            let stack = StackConfig::mpich2_nmad(self.pioman)
                .with_faults(FaultPlan::uniform(self.seed, self.spec));
            run_workload(self.workload, &stack, self.seed)
        }

        /// Fault-free control run with the same fabric seed (no fault
        /// plan, retry layer off).
        pub fn run_clean(&self) -> Fingerprint {
            let stack = StackConfig::mpich2_nmad(self.pioman).with_fabric_seed(self.seed);
            run_workload(self.workload, &stack, self.seed)
        }

        /// [`Scenario::run`] with full observability armed: returns the
        /// fingerprint plus the structured span/metric report. Recording
        /// is a pure side channel — the fingerprint must equal the
        /// untraced run's (the replay tests pin that down).
        pub fn run_traced(&self) -> (Fingerprint, crate::obs::Report) {
            let stack = StackConfig::mpich2_nmad(self.pioman)
                .with_faults(FaultPlan::uniform(self.seed, self.spec))
                .with_obs(crate::obs::ObsConfig::full());
            run_workload_traced(self.workload, &stack, self.seed)
        }

        /// [`Scenario::run_clean`] with full observability armed.
        pub fn run_clean_traced(&self) -> (Fingerprint, crate::obs::Report) {
            let stack = StackConfig::mpich2_nmad(self.pioman)
                .with_fabric_seed(self.seed)
                .with_obs(crate::obs::ObsConfig::full());
            run_workload_traced(self.workload, &stack, self.seed)
        }
    }

    /// Deterministic pseudo-random byte for (seed, index) — same LCG
    /// pattern as the full-stack tests.
    pub fn byte(seed: u64, i: usize) -> u8 {
        let x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15);
        (x >> 33) as u8
    }

    fn payload(seed: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| byte(seed, i)).collect()
    }

    /// Per-message seed: mixes the scenario seed with source rank, tag
    /// lane and round so every payload in a run is distinct.
    fn msg_seed(seed: u64, src: usize, lane: usize, round: usize) -> u64 {
        seed ^ ((src as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ (((lane as u64) << 24) | round as u64).wrapping_mul(6364136223846793005)
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

    fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn fingerprint(outcome: &RunOutcome, rank_hashes: &[u64]) -> Fingerprint {
        let mut payload_hash = FNV_OFFSET;
        for h in rank_hashes {
            fnv_bytes(&mut payload_hash, &h.to_le_bytes());
        }
        Fingerprint {
            final_time_nanos: outcome.sim.final_time.as_nanos(),
            events: outcome.sim.events,
            nm_stats: outcome.nm_stats.clone(),
            fault_counters: outcome.fault_counters,
            rail_counters: outcome.rail_counters.clone(),
            piom_rekicks: outcome.piom_rekicks,
            payload_hash,
            copy: outcome.copy,
        }
    }

    fn run_workload(workload: Workload, stack: &StackConfig, seed: u64) -> Fingerprint {
        run_workload_full(workload, stack, seed).0
    }

    /// Like [`run_workload`] but also hands back the observability report
    /// (panics if the stack did not arm `ObsConfig` — the traced entry
    /// points always do).
    fn run_workload_traced(
        workload: Workload,
        stack: &StackConfig,
        seed: u64,
    ) -> (Fingerprint, crate::obs::Report) {
        let (fp, report) = run_workload_full(workload, stack, seed);
        (fp, report.expect("traced run must carry an obs report"))
    }

    fn run_workload_full(
        workload: Workload,
        stack: &StackConfig,
        seed: u64,
    ) -> (Fingerprint, Option<crate::obs::Report>) {
        let (cluster, nranks) = match workload {
            Workload::SendRecv | Workload::Multirail => (Cluster::xeon_pair(), 2),
            Workload::AnySource => (Cluster::grid5000_opteron(), 1 + ANYSRC_SENDERS),
        };
        let placement = Placement::one_per_node(nranks, &cluster);
        let (outcome, hashes) = match workload {
            Workload::SendRecv => {
                run_mpi_collect(&cluster, &placement, stack, nranks, move |mpi| {
                    send_recv_rank(mpi, seed)
                })
            }
            Workload::AnySource => {
                run_mpi_collect(&cluster, &placement, stack, nranks, move |mpi| {
                    any_source_rank(mpi, seed)
                })
            }
            Workload::Multirail => {
                run_mpi_collect(&cluster, &placement, stack, nranks, move |mpi| {
                    multirail_rank(mpi, seed)
                })
            }
        };
        let fp = fingerprint(&outcome, &hashes);
        (fp, outcome.obs)
    }

    /// Sizes straddle the 16 KiB eager/rendezvous boundary.
    const SENDRECV_SIZES: [usize; 5] = [1, 600, 4 * 1024, 17 * 1024, 48 * 1024];
    const SENDRECV_ROUNDS: usize = 2;

    fn send_recv_rank(mpi: &MpiHandle, seed: u64) -> u64 {
        let me = mpi.rank();
        let peer = 1 - me;
        // Post every receive first: irecvs on one (source, tag) match in
        // posted order, so round r's receive completing with round r's
        // payload proves per-sender ordering survived the faults.
        let mut recvs = Vec::new();
        for (k, &len) in SENDRECV_SIZES.iter().enumerate() {
            for round in 0..SENDRECV_ROUNDS {
                recvs.push((k, round, len, mpi.irecv(Src::Rank(peer), k as u32)));
            }
        }
        let mut sends = Vec::new();
        for (k, &len) in SENDRECV_SIZES.iter().enumerate() {
            for round in 0..SENDRECV_ROUNDS {
                sends.push(mpi.isend(peer, k as u32, &payload(msg_seed(seed, me, k, round), len)));
            }
        }
        let mut h = FNV_OFFSET;
        for (k, round, len, req) in recvs {
            let (data, status) = mpi.wait_data(req);
            let data = data.expect("receive carries data");
            let status = status.expect("receive carries status");
            assert_eq!(status.source, peer);
            assert_eq!(status.tag, k as u32);
            assert_eq!(data.len(), len, "length mismatch on tag {k} round {round}");
            let want = payload(msg_seed(seed, peer, k, round), len);
            assert_eq!(
                &data[..],
                &want[..],
                "payload corrupt or out of order: tag {k} round {round}"
            );
            fnv_bytes(&mut h, &data);
        }
        mpi.waitall(&sends);
        mpi.barrier();
        h
    }

    const ANYSRC_SENDERS: usize = 4;
    const ANYSRC_MSGS: usize = 6;
    const ANYSRC_TAG: u32 = 7;
    const ANYSRC_SIZES: [usize; 3] = [48, 1500, 18 * 1024];

    fn anysrc_payload(seed: u64, sender: usize, i: usize) -> Vec<u8> {
        let len = ANYSRC_SIZES[i % ANYSRC_SIZES.len()];
        let mut p = payload(msg_seed(seed, sender, 100, i), len);
        p[..8].copy_from_slice(&(((sender as u64) << 32) | i as u64).to_le_bytes());
        p
    }

    fn any_source_rank(mpi: &MpiHandle, seed: u64) -> u64 {
        let me = mpi.rank();
        if me == 0 {
            let mut next = [0usize; ANYSRC_SENDERS + 1];
            let mut h = FNV_OFFSET;
            for _ in 0..ANYSRC_SENDERS * ANYSRC_MSGS {
                let (data, status) = mpi.recv(Src::Any, ANYSRC_TAG);
                let s = status.source;
                assert!((1..=ANYSRC_SENDERS).contains(&s), "bogus source {s}");
                let hdr = u64::from_le_bytes(data[..8].try_into().unwrap());
                let (hs, hi) = ((hdr >> 32) as usize, (hdr & 0xffff_ffff) as usize);
                assert_eq!(hs, s, "header sender disagrees with matched source");
                assert_eq!(hi, next[s], "per-sender order violated from rank {s}");
                next[s] += 1;
                let want = anysrc_payload(seed, s, hi);
                assert_eq!(data.len(), want.len());
                assert_eq!(&data[..], &want[..], "payload corrupt from rank {s} msg {hi}");
                fnv_bytes(&mut h, &data);
            }
            // Exactly-once: every sender delivered its full quota, no
            // extras (the loop count above bounds the total).
            for (s, n) in next.iter().enumerate().skip(1) {
                assert_eq!(*n, ANYSRC_MSGS, "sender {s} under-delivered");
            }
            mpi.barrier();
            h
        } else {
            for i in 0..ANYSRC_MSGS {
                mpi.send(0, ANYSRC_TAG, &anysrc_payload(seed, me, i));
            }
            mpi.barrier();
            0
        }
    }

    /// Above the multirail threshold: the balanced strategy splits each
    /// transfer across both xeon_pair rails.
    const MULTIRAIL_LEN: usize = 160 * 1024;
    const MULTIRAIL_ROUNDS: usize = 3;
    const MULTIRAIL_TAG: u32 = 3;

    fn multirail_rank(mpi: &MpiHandle, seed: u64) -> u64 {
        let me = mpi.rank();
        let peer = 1 - me;
        let mut recvs = Vec::new();
        for round in 0..MULTIRAIL_ROUNDS {
            recvs.push((round, mpi.irecv(Src::Rank(peer), MULTIRAIL_TAG)));
        }
        let mut sends = Vec::new();
        for round in 0..MULTIRAIL_ROUNDS {
            sends.push(mpi.isend(
                peer,
                MULTIRAIL_TAG,
                &payload(msg_seed(seed, me, 200, round), MULTIRAIL_LEN),
            ));
        }
        let mut h = FNV_OFFSET;
        for (round, req) in recvs {
            let (data, _) = mpi.wait_data(req);
            let data = data.expect("receive carries data");
            let want = payload(msg_seed(seed, peer, 200, round), MULTIRAIL_LEN);
            assert_eq!(&data[..], &want[..], "multirail payload corrupt round {round}");
            fnv_bytes(&mut h, &data);
        }
        mpi.waitall(&sends);
        mpi.barrier();
        h
    }
}
