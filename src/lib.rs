//! Umbrella crate for the MPICH2-NewMadeleine reproduction workspace.
//!
//! Re-exports the individual crates under one roof so the examples and the
//! workspace-level integration tests can `use mpich2_nmad_repro::...`.

pub use baselines;
pub use mpi_ch3;
pub use nasbench;
pub use nemesis;
pub use netpipe;
pub use nmad;
pub use piom;
pub use simnet;
