//! Seeded fault-injection sweeps over the full MPICH2-NMad stack.
//!
//! Each scenario runs a complete MPI job (CH3 → NewMadeleine → fabric,
//! optionally under PIOMan) with a seeded [`FaultPlan`] on the wire. The
//! rank programs in `sim_harness` assert byte-exact, exactly-once,
//! per-sender-in-order delivery, so every run doubles as a correctness
//! proof of the retry layer under that fault schedule. On top of that the
//! tests here check the retry counters (nonzero under lossy schedules,
//! zero without faults) and the replay identity: the same seed must
//! reproduce the run bit-for-bit, down to every statistic.
//!
//! Sweep budget: 28 distinct seeds across four fault schedules
//! (drop-heavy, delay/reorder, NIC-stall, mixed), each seed driving all
//! three workloads (send/recv ladder, ANY_SOURCE fan-in, multirail).

use mpich2_nmad_repro::sim_harness::{Scenario, Workload};
use mpich2_nmad_repro::simnet::FaultSpec;

const WORKLOADS: [Workload; 3] = [
    Workload::SendRecv,
    Workload::AnySource,
    Workload::Multirail,
];

/// Base offset added to every sweep seed. CI's fault-seed matrix sets
/// `SIM_SEED_BASE` to shift the whole sweep onto a fresh seed range, so
/// each matrix job proves the invariants on schedules no other job saw.
fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Run `spec` over `seeds` × all workloads, alternating the PIOMan and
/// app-polling progression models, and hand each fingerprint to `check`.
fn sweep(
    spec: FaultSpec,
    seeds: std::ops::Range<u64>,
    mut check: impl FnMut(u64, Workload, &mpich2_nmad_repro::sim_harness::Fingerprint),
) {
    let base = seed_base();
    for seed in seeds {
        let seed = base + seed;
        for (i, &workload) in WORKLOADS.iter().enumerate() {
            let pioman = (seed + i as u64) % 2 == 1;
            let fp = Scenario::new(seed, spec, workload, pioman).run();
            check(seed, workload, &fp);
        }
    }
}

#[test]
fn sweep_drop_heavy() {
    // 15% drop + 5% duplication: nothing completes without the retry
    // layer, so every single run must show retransmissions and drops.
    let mut total_drops = 0;
    sweep(FaultSpec::drop_heavy(), 0..8, |seed, workload, fp| {
        let fc = fp.fault_counters.expect("fault plan installed");
        assert!(
            fc.dropped > 0,
            "seed {seed} {workload:?}: drop-heavy schedule dropped nothing"
        );
        assert!(
            fp.total_retries() > 0,
            "seed {seed} {workload:?}: survived {} drops with zero retransmissions",
            fc.dropped
        );
        total_drops += fc.dropped;
    });
    assert!(total_drops > 100, "sweep barely exercised the fault plan");
}

#[test]
fn sweep_delay_reorder() {
    // 35% of transfers delayed by up to 200µs (past the 80µs retry
    // timeout, so spurious retransmissions and reordering both occur)
    // plus 5% duplication — the dedup/ordering machinery's stress test.
    let (mut delayed, mut dups, mut retries) = (0, 0, 0);
    sweep(FaultSpec::delay_reorder(), 100..108, |_, _, fp| {
        let fc = fp.fault_counters.unwrap();
        delayed += fc.delayed;
        dups += fc.duplicated;
        retries += fp.total_retries();
    });
    assert!(delayed > 100, "delay schedule barely delayed ({delayed})");
    assert!(dups > 0, "duplication never triggered");
    assert!(retries > 0, "200µs delays never outran the 80µs retry timer");
}

#[test]
fn sweep_nic_stall() {
    // Stalled NIC ports + registration-cache misses: no packet loss, so
    // the stack runs without the retry layer — this schedule checks that
    // timing faults alone never corrupt or reorder anything.
    let (mut stalls, mut misses) = (0, 0);
    sweep(FaultSpec::nic_stall(), 200..208, |seed, workload, fp| {
        let fc = fp.fault_counters.unwrap();
        assert_eq!(
            fp.total_retries(),
            0,
            "seed {seed} {workload:?}: lossless schedule should need no retries"
        );
        stalls += fc.stalls;
        misses += fc.reg_misses;
    });
    assert!(stalls > 20, "stall schedule barely stalled ({stalls})");
    assert!(misses > 20, "reg-cache misses barely triggered ({misses})");
}

#[test]
fn sweep_mixed() {
    // Everything at once: drops, dups, delays, stalls, reg misses.
    sweep(FaultSpec::mixed(), 300..304, |seed, workload, fp| {
        let fc = fp.fault_counters.unwrap();
        assert!(fc.dropped > 0, "seed {seed} {workload:?}: no drops");
        assert!(
            fp.total_retries() > 0,
            "seed {seed} {workload:?}: no retransmissions under mixed faults"
        );
    });
}

#[test]
fn no_faults_means_no_retries() {
    // The control: without a fault plan the retry layer stays off and
    // every retry/ack/dup counter reads zero — the happy path is
    // untouched by the reliability machinery.
    for &workload in &WORKLOADS {
        for pioman in [false, true] {
            let fp = Scenario::new(42, FaultSpec::NONE, workload, pioman).run_clean();
            assert_eq!(fp.fault_counters, None);
            assert_eq!(
                fp.total_retries(),
                0,
                "{workload:?} pioman={pioman}: clean run retransmitted"
            );
            for st in &fp.nm_stats {
                assert_eq!(st.acks_sent, 0, "{workload:?}: acks on the clean path");
                assert_eq!(st.fins_sent, 0, "{workload:?}: fins on the clean path");
                assert_eq!(st.dup_envelopes + st.dup_data, 0);
            }
        }
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    // The tentpole determinism claim: a scenario is a pure function of
    // its seed. Every statistic — end time, event count, per-rank
    // NewMadeleine counters, per-rail fabric totals, fault-injection
    // counters, payload hash — must match across independent executions.
    let scenarios = [
        Scenario::new(7, FaultSpec::drop_heavy(), Workload::SendRecv, false),
        Scenario::new(7, FaultSpec::drop_heavy(), Workload::SendRecv, true),
        Scenario::new(11, FaultSpec::delay_reorder(), Workload::AnySource, false),
        Scenario::new(13, FaultSpec::nic_stall(), Workload::Multirail, true),
        Scenario::new(17, FaultSpec::mixed(), Workload::Multirail, false),
    ];
    for sc in scenarios {
        let a = sc.run();
        let b = sc.run();
        assert_eq!(a, b, "replay diverged for {sc:?}");
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the seed actually reaches the fault plan: two
    // different seeds on a lossy schedule produce different executions.
    let a = Scenario::new(1, FaultSpec::drop_heavy(), Workload::SendRecv, false).run();
    let b = Scenario::new(2, FaultSpec::drop_heavy(), Workload::SendRecv, false).run();
    assert_ne!(a, b, "distinct seeds replayed identically");
}

#[test]
fn clean_runs_replay_too() {
    // Replay identity holds without faults as well (seeded jitter only).
    let sc = Scenario::new(5, FaultSpec::NONE, Workload::SendRecv, true);
    assert_eq!(sc.run_clean(), sc.run_clean());
}

#[test]
fn multirail_workload_uses_both_rails() {
    let fp = Scenario::new(3, FaultSpec::NONE, Workload::Multirail, false).run_clean();
    assert_eq!(fp.rail_counters.len(), 2, "xeon_pair has two rails");
    for (rail, &(msgs, bytes)) in fp.rail_counters.iter().enumerate() {
        assert!(msgs > 0, "rail {rail} carried no messages");
        assert!(bytes > 0, "rail {rail} carried no bytes");
    }
}

#[test]
fn golden_trace_same_seed_bit_identical_span_stream() {
    // Golden-trace replay: with observability armed, the same seed must
    // reproduce the span stream bit-for-bit — every event, in the same
    // append order, with the same canonical hash — including under a
    // fault-injected schedule where the trace is full of retries and
    // reroutes. Any nondeterminism the fingerprint's aggregate counters
    // could average away shows up here as a single diverging event.
    let scenarios = [
        Scenario::new(21, FaultSpec::NONE, Workload::SendRecv, false),
        Scenario::new(23, FaultSpec::mixed(), Workload::Multirail, true),
        Scenario::new(29, FaultSpec::drop_heavy(), Workload::AnySource, false),
    ];
    for sc in scenarios {
        let ((fa, ra), (fb, rb)) = if sc.spec == FaultSpec::NONE {
            (sc.run_clean_traced(), sc.run_clean_traced())
        } else {
            (sc.run_traced(), sc.run_traced())
        };
        assert_eq!(fa, fb, "fingerprint diverged for {sc:?}");
        assert_eq!(ra.events, rb.events, "span stream diverged for {sc:?}");
        assert_eq!(ra.hash(), rb.hash(), "trace hash diverged for {sc:?}");
        assert_eq!(
            ra.to_jsonl(),
            rb.to_jsonl(),
            "JSONL export diverged for {sc:?}"
        );
        assert!(!ra.events.is_empty(), "traced run recorded nothing: {sc:?}");
    }
}

#[test]
fn tracing_is_observation_only() {
    // Arming the recorder must not perturb the simulation: the traced
    // run's fingerprint equals the untraced run's, faults and all.
    let scenarios = [
        Scenario::new(31, FaultSpec::NONE, Workload::SendRecv, true),
        Scenario::new(37, FaultSpec::mixed(), Workload::Multirail, false),
    ];
    for sc in scenarios {
        let (traced, untraced) = if sc.spec == FaultSpec::NONE {
            (sc.run_clean_traced().0, sc.run_clean())
        } else {
            (sc.run_traced().0, sc.run())
        };
        assert_eq!(
            traced, untraced,
            "recording changed the simulation for {sc:?}"
        );
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    // The seed reaches the span stream: two fault seeds diverge in
    // recorded events, not just in aggregate counters.
    let a = Scenario::new(1, FaultSpec::drop_heavy(), Workload::SendRecv, false).run_traced();
    let b = Scenario::new(2, FaultSpec::drop_heavy(), Workload::SendRecv, false).run_traced();
    assert_ne!(a.1.hash(), b.1.hash(), "distinct seeds traced identically");
}
