//! Model-checked concurrency proofs for the real-thread hot path,
//! exploring every preemption-bounded interleaving with the offline loom
//! subset in `vendor/loom`.
//!
//! Build and run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test --release --test loom_queue
//! ```
//!
//! Without `--cfg loom` this target compiles to nothing: the shimmed
//! crates use plain `std` atomics and these models would not interleave.
//!
//! What is proven (under sequential consistency, preemption bound 3 — the
//! TSan job covers the weak-memory axis):
//!
//! * **NemQueue linearizability**: concurrent enqueuers never lose or
//!   duplicate a cell, and the single consumer observes each producer's
//!   cells in that producer's order, in every schedule — including the
//!   "enqueuer swapped `tail` but has not linked `next` yet" window the
//!   dequeuer spins on.
//! * **CreditPool conservation**: concurrent acquires/releases never mint
//!   or leak a credit, and a pool of capacity 1 admits at most one of two
//!   racing acquirers.
//! * **WakeCell handoff**: the grant/wait protocol has no lost wakeup —
//!   a grant issued before, during, or after the waiter's wait is always
//!   observed (a lost wakeup would surface as a model deadlock).
#![cfg(loom)]

use nemesis::cell::CellPool;
use nemesis::queue::NemQueue;
use nmad::credit::CreditPool;
use std::sync::Arc;

#[test]
fn nem_queue_two_producers_never_lose_a_cell() {
    loom::model(|| {
        let (pool, mut handles) = CellPool::new(2, 1);
        let q = Arc::new(NemQueue::new());
        let mut producers = Vec::new();
        for p in 0..2usize {
            let mut h = handles[p].pop().unwrap();
            h.header.src_rank = p;
            h.header.seq = 0;
            let q = Arc::clone(&q);
            producers.push(loom::thread::spawn(move || q.enqueue(h)));
        }
        // Single consumer: drain exactly two cells, yielding while empty.
        let mut got = [0usize; 2];
        let mut received = 0;
        while received < 2 {
            match q.dequeue(&pool) {
                Some(h) => {
                    got[h.header.src_rank] += 1;
                    received += 1;
                }
                None => loom::thread::yield_now(),
            }
        }
        assert_eq!(got, [1, 1], "a producer's cell was lost or duplicated");
        assert!(q.dequeue(&pool).is_none(), "phantom cell after drain");
        for t in producers {
            t.join().unwrap();
        }
    });
}

#[test]
fn nem_queue_preserves_per_producer_fifo() {
    loom::model(|| {
        // One producer enqueues two cells concurrently with the consumer:
        // every schedule must deliver them in enqueue order, including the
        // mid-append window where `tail` points at a cell whose `next`
        // link is not yet visible.
        let (pool, mut handles) = CellPool::new(1, 2);
        let q = Arc::new(NemQueue::new());
        let mut cells = handles.remove(0);
        for (i, h) in cells.iter_mut().enumerate() {
            h.header.seq = i as u64;
        }
        let q2 = Arc::clone(&q);
        let producer = loom::thread::spawn(move || {
            // Reverse pop order so cell seq 0 goes first.
            let first = cells.remove(0);
            q2.enqueue(first);
            let second = cells.remove(0);
            q2.enqueue(second);
        });
        let mut expect = 0u64;
        while expect < 2 {
            match q.dequeue(&pool) {
                Some(h) => {
                    assert_eq!(h.header.seq, expect, "FIFO violated");
                    expect += 1;
                }
                None => loom::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    });
}

#[test]
fn credit_pool_capacity_one_admits_exactly_one_racer() {
    loom::model(|| {
        let pool = Arc::new(CreditPool::new(1));
        let p2 = Arc::clone(&pool);
        let t = loom::thread::spawn(move || p2.try_acquire());
        let mine = pool.try_acquire();
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "capacity-1 pool must admit exactly one of two racers (got {mine}/{theirs})"
        );
        assert_eq!(pool.available(), 0);
    });
}

#[test]
fn credit_pool_conserves_credits_under_concurrent_cycles() {
    loom::model(|| {
        let pool = Arc::new(CreditPool::new(2));
        let mut threads = Vec::new();
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            threads.push(loom::thread::spawn(move || {
                if pool.try_acquire() {
                    pool.release(1);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            pool.available(),
            2,
            "acquire/release cycles minted or leaked a credit"
        );
    });
}

#[test]
fn wake_cell_grant_is_never_lost() {
    loom::model(|| {
        // Granter and waiter race: whichever order the schedule picks, the
        // waiter must see the grant. A lost wakeup would leave the waiter
        // blocked forever, which the model reports as a deadlock.
        let cell = simnet::WakeCell::new();
        let c2 = Arc::clone(&cell);
        let waiter = loom::thread::spawn(move || c2.wait_go());
        cell.grant();
        assert_eq!(waiter.join().unwrap(), Ok(()));
    });
}

#[test]
fn wake_cell_teardown_unblocks_the_waiter() {
    loom::model(|| {
        let cell = simnet::WakeCell::new();
        let c2 = Arc::clone(&cell);
        let waiter = loom::thread::spawn(move || c2.wait_go());
        cell.tear_down();
        assert_eq!(waiter.join().unwrap(), Err(()));
    });
}
