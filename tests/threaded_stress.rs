//! Real-thread stress for the lock-free hot path: 16 producers × 4 VCs,
//! eager + rendezvous traffic with flow control armed.
//!
//! What must hold in every run (scheduling is the OS's, not ours):
//!
//! * the run terminates — no deadlock between window backpressure, credit
//!   stalls, and queue handoff;
//! * per-sender FIFO: each producer's sequence numbers arrive dense and in
//!   order at its VC's consumer;
//! * credit conservation: every per-gate eager pool is back at capacity
//!   after the drain;
//! * the merged striped-counter [`NmStats`] snapshot equals a
//!   single-threaded oracle running the identical per-message logic
//!   (modulo the schedule-dependent stall counter);
//! * no CRC drops: every payload crossed the queues intact.

use mpi_ch3::{run_inline, run_threaded, ThreadedConfig};

fn stress_cfg() -> ThreadedConfig {
    ThreadedConfig {
        producers: 16,
        vcs: 4,
        window: 16,
        msgs_per_producer: 500,
        payload_bytes: 200,
        rdv_every: 7,
        eager_credits: 8,
    }
}

#[test]
fn sixteen_producers_four_vcs_flow_controlled() {
    let cfg = stress_cfg();
    let r = run_threaded(cfg);

    let total = cfg.producers as u64 * cfg.msgs_per_producer;
    assert_eq!(r.total_msgs, total, "messages were lost or duplicated");
    assert_eq!(r.fifo_violations, 0, "per-sender FIFO violated");
    assert!(r.credit_intact, "eager credits were minted or leaked");
    assert_eq!(r.stats.crc_drops, 0, "payload corrupted crossing the queues");
    assert_eq!(r.latencies_ns.len(), total as usize);
    assert!(r.p99_ns() >= r.p50_ns());

    // Both matcher paths saw traffic (even seqs posted-first, odd seqs
    // unexpected-first with ANY_SOURCE arbitration).
    assert!(r.matched_posted > 0 && r.matched_unexpected > 0);
    assert_eq!(r.matched_posted + r.matched_unexpected, total);

    // Protocol mix: every 7th message went rendezvous.
    let rdv = cfg.producers as u64 * (cfg.msgs_per_producer / cfg.rdv_every);
    assert_eq!(r.stats.rdv_sends, rdv);
    assert_eq!(r.stats.eager_sends, total - rdv);
    assert_eq!(r.stats.fc_eager_admitted, total - rdv);
    assert_eq!(r.stats.fc_credits_returned, total - rdv);
}

#[test]
fn merged_stats_equal_single_threaded_oracle() {
    let cfg = stress_cfg();
    let mut threaded = run_threaded(cfg).stats;
    let mut oracle = run_inline(cfg).stats;
    // The stall counter records "had to wait at least once", which depends
    // on the OS schedule; every other counter is a deterministic function
    // of the workload.
    threaded.fc_credit_stalls = 0;
    oracle.fc_credit_stalls = 0;
    assert_eq!(
        threaded, oracle,
        "merged striped counters diverged from the sequential oracle"
    );
}

#[test]
fn tiny_window_tiny_credits_still_drain() {
    // The nastiest backpressure corner: a 2-cell window and 1 credit per
    // gate force constant producer stalls; the run must still terminate
    // with everything delivered.
    let cfg = ThreadedConfig {
        producers: 8,
        vcs: 2,
        window: 2,
        msgs_per_producer: 300,
        payload_bytes: 64,
        rdv_every: 3,
        eager_credits: 1,
    };
    let r = run_threaded(cfg);
    assert_eq!(r.total_msgs, 8 * 300);
    assert_eq!(r.fifo_violations, 0);
    assert!(r.credit_intact);
    assert_eq!(r.stats.crc_drops, 0);
}

#[test]
fn producers_outnumbering_vcs_and_vcs_outnumbering_producers() {
    for (producers, vcs) in [(16usize, 1usize), (2, 4)] {
        let cfg = ThreadedConfig {
            producers,
            vcs,
            window: 8,
            msgs_per_producer: 200,
            payload_bytes: 32,
            rdv_every: 5,
            eager_credits: 4,
        };
        let r = run_threaded(cfg);
        assert_eq!(r.total_msgs, producers as u64 * 200);
        assert_eq!(r.fifo_violations, 0);
        assert!(r.credit_intact);
    }
}
