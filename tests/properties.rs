//! Property-based tests (proptest) over core invariants:
//!
//! * arbitrary message schedules are delivered intact and in per-sender
//!   order on both the bypass and a baseline stack;
//! * the sampling split is always an exact partition with near-equal
//!   finish times;
//! * the ANY_SOURCE list machinery never loses or duplicates a message
//!   under random source/parking interleavings.

use bytes::Bytes;
use proptest::prelude::*;

use mpich2_nmad_repro::baselines;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::Src;
use mpich2_nmad_repro::nmad::sampling::{split_sizes, LinkProfile};
use mpich2_nmad_repro::simnet::{Cluster, NodeId, Placement, SimDuration};

/// One message in a random schedule.
#[derive(Clone, Debug)]
struct Msg {
    from: usize, // 1..=3 (rank 0 receives)
    size: usize,
    delay_ns: u64,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (1usize..=3, 1usize..40_000, 0u64..5_000).prop_map(|(from, size, delay_ns)| Msg {
        from,
        size,
        delay_ns,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full MPI job; keep the count modest
        .. ProptestConfig::default()
    })]

    /// Any schedule of messages from 3 senders (one intra-node, two
    /// remote) to a single ANY_SOURCE receiver arrives exactly once, with
    /// per-sender FIFO order, on the bypass stack.
    #[test]
    fn any_source_never_loses_or_reorders(msgs in proptest::collection::vec(msg_strategy(), 1..12)) {
        let cluster = Cluster::grid5000_opteron();
        let placement = Placement::explicit(vec![
            NodeId(0), NodeId(0), NodeId(1), NodeId(2),
        ]);
        let stack = StackConfig::mpich2_nmad(false);
        let per_sender: Vec<Vec<Msg>> = (1..=3)
            .map(|s| msgs.iter().filter(|m| m.from == s).cloned().collect())
            .collect();
        let total = msgs.len();
        let ps = per_sender.clone();
        let (_, ok) = run_mpi_collect(&cluster, &placement, &stack, 4, move |mpi| {
            if mpi.rank() == 0 {
                let mut seen: Vec<Vec<(usize, u8)>> = vec![Vec::new(); 4];
                for _ in 0..total {
                    let (data, st) = mpi.recv(Src::Any, 5);
                    seen[st.source].push((data.len(), data[0]));
                }
                // Per-sender order must match the send order.
                for s in 1..=3usize {
                    let expect: Vec<(usize, u8)> = ps[s - 1]
                        .iter()
                        .enumerate()
                        .map(|(i, m)| (m.size, i as u8))
                        .collect();
                    if seen[s] != expect {
                        return false;
                    }
                }
                true
            } else {
                for (i, m) in ps[mpi.rank() - 1].iter().enumerate() {
                    mpi.compute(SimDuration::nanos(m.delay_ns));
                    let mut payload = vec![0u8; m.size];
                    payload[0] = i as u8;
                    mpi.send(0, 5, &payload);
                }
                true
            }
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }

    /// The equal-finish split always partitions exactly and balances
    /// completion times across rails.
    #[test]
    fn split_partitions_exactly(
        size in 1usize..(64 << 20),
        lat_a in 100u64..10_000,
        lat_b in 100u64..10_000,
        bw_a in 100.0f64..4000.0,
        bw_b in 100.0f64..4000.0,
    ) {
        let profiles = [
            LinkProfile { latency: SimDuration::nanos(lat_a), bandwidth_bps: bw_a * 1e6 },
            LinkProfile { latency: SimDuration::nanos(lat_b), bandwidth_bps: bw_b * 1e6 },
        ];
        let chunks = split_sizes(size, &profiles);
        prop_assert_eq!(chunks.iter().sum::<usize>(), size);
        // If both rails got a share, their finish times are close.
        if chunks.iter().all(|&c| c > 0) {
            let t0 = profiles[0].predict(chunks[0]).as_nanos() as f64;
            let t1 = profiles[1].predict(chunks[1]).as_nanos() as f64;
            let rel = (t0 - t1).abs() / t0.max(t1);
            prop_assert!(rel < 0.05, "finish skew {rel}: {t0} vs {t1}");
        }
    }

    /// Random payloads survive a round trip bit-for-bit on a baseline
    /// (CH3 rendezvous with ACK pipeline) stack.
    #[test]
    fn payload_integrity_openmpi_stack(seed in 0u64..u64::MAX, size in 1usize..300_000) {
        let cluster = Cluster::xeon_pair();
        let placement = Placement::one_per_node(2, &cluster);
        let stack = baselines::openmpi(0);
        let data: Vec<u8> = (0..size)
            .map(|i| {
                let x = seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                (x >> 56) as u8
            })
            .collect();
        let expect = Bytes::from(data.clone());
        let (_, ok) = run_mpi_collect(&cluster, &placement, &stack, 2, move |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &data);
                true
            } else {
                let (got, _) = mpi.recv(Src::Rank(0), 1);
                got == expect
            }
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }
}
