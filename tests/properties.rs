//! Property-based tests (proptest) over core invariants:
//!
//! * arbitrary message schedules are delivered intact and in per-sender
//!   order on both the bypass and a baseline stack;
//! * the sampling split is always an exact partition with near-equal
//!   finish times;
//! * the ANY_SOURCE list machinery never loses or duplicates a message
//!   under random source/parking interleavings.

use bytes::Bytes;
use proptest::prelude::*;

use mpich2_nmad_repro::baselines;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::Src;
use mpich2_nmad_repro::nmad::sampling::{split_sizes, LinkProfile};
use mpich2_nmad_repro::simnet::{Cluster, NodeId, Placement, SimDuration};

/// One message in a random schedule.
#[derive(Clone, Debug)]
struct Msg {
    from: usize, // 1..=3 (rank 0 receives)
    size: usize,
    delay_ns: u64,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (1usize..=3, 1usize..40_000, 0u64..5_000).prop_map(|(from, size, delay_ns)| Msg {
        from,
        size,
        delay_ns,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full MPI job; keep the count modest
        .. ProptestConfig::default()
    })]

    /// Any schedule of messages from 3 senders (one intra-node, two
    /// remote) to a single ANY_SOURCE receiver arrives exactly once, with
    /// per-sender FIFO order, on the bypass stack.
    #[test]
    fn any_source_never_loses_or_reorders(msgs in proptest::collection::vec(msg_strategy(), 1..12)) {
        let cluster = Cluster::grid5000_opteron();
        let placement = Placement::explicit(vec![
            NodeId(0), NodeId(0), NodeId(1), NodeId(2),
        ]);
        let stack = StackConfig::mpich2_nmad(false);
        let per_sender: Vec<Vec<Msg>> = (1..=3)
            .map(|s| msgs.iter().filter(|m| m.from == s).cloned().collect())
            .collect();
        let total = msgs.len();
        let ps = per_sender.clone();
        let (_, ok) = run_mpi_collect(&cluster, &placement, &stack, 4, move |mpi| {
            if mpi.rank() == 0 {
                let mut seen: Vec<Vec<(usize, u8)>> = vec![Vec::new(); 4];
                for _ in 0..total {
                    let (data, st) = mpi.recv(Src::Any, 5);
                    seen[st.source].push((data.len(), data[0]));
                }
                // Per-sender order must match the send order.
                for s in 1..=3usize {
                    let expect: Vec<(usize, u8)> = ps[s - 1]
                        .iter()
                        .enumerate()
                        .map(|(i, m)| (m.size, i as u8))
                        .collect();
                    if seen[s] != expect {
                        return false;
                    }
                }
                true
            } else {
                for (i, m) in ps[mpi.rank() - 1].iter().enumerate() {
                    mpi.compute(SimDuration::nanos(m.delay_ns));
                    let mut payload = vec![0u8; m.size];
                    payload[0] = i as u8;
                    mpi.send(0, 5, &payload);
                }
                true
            }
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }

    /// The equal-finish split always partitions exactly and balances
    /// completion times across rails.
    #[test]
    fn split_partitions_exactly(
        size in 1usize..(64 << 20),
        lat_a in 100u64..10_000,
        lat_b in 100u64..10_000,
        bw_a in 100.0f64..4000.0,
        bw_b in 100.0f64..4000.0,
    ) {
        let profiles = [
            LinkProfile { latency: SimDuration::nanos(lat_a), bandwidth_bps: bw_a * 1e6 },
            LinkProfile { latency: SimDuration::nanos(lat_b), bandwidth_bps: bw_b * 1e6 },
        ];
        let chunks = split_sizes(size, &profiles);
        prop_assert_eq!(chunks.iter().sum::<usize>(), size);
        // If both rails got a share, their finish times are close.
        if chunks.iter().all(|&c| c > 0) {
            let t0 = profiles[0].predict(chunks[0]).as_nanos() as f64;
            let t1 = profiles[1].predict(chunks[1]).as_nanos() as f64;
            let rel = (t0 - t1).abs() / t0.max(t1);
            prop_assert!(rel < 0.05, "finish skew {rel}: {t0} vs {t1}");
        }
    }

    /// Random payloads survive a round trip bit-for-bit on a baseline
    /// (CH3 rendezvous with ACK pipeline) stack.
    #[test]
    fn payload_integrity_openmpi_stack(seed in 0u64..u64::MAX, size in 1usize..300_000) {
        let cluster = Cluster::xeon_pair();
        let placement = Placement::one_per_node(2, &cluster);
        let stack = baselines::openmpi(0);
        let data: Vec<u8> = (0..size)
            .map(|i| {
                let x = seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                (x >> 56) as u8
            })
            .collect();
        let expect = Bytes::from(data.clone());
        let (_, ok) = run_mpi_collect(&cluster, &placement, &stack, 2, move |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &data);
                true
            } else {
                let (got, _) = mpi.recv(Src::Rank(0), 1);
                got == expect
            }
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }
}

// ---------------------------------------------------------------------
// CH3 queue-pair invariant: posted ∩ unexpected = ∅
// ---------------------------------------------------------------------

use std::sync::atomic::Ordering;

use mpich2_nmad_repro::mpi_ch3::queues::{Ch3Queues, UnexMsg};
use mpich2_nmad_repro::mpi_ch3::request::{ReqKind, ReqPath, RequestTable};
use mpich2_nmad_repro::simnet::NmBuf;

/// One step of a random post/arrive/stall interleaving against the CH3
/// queue pair.
#[derive(Clone, Debug)]
enum QOp {
    /// Post a receive (src `None` = MPI_ANY_SOURCE).
    Post { src: Option<usize>, key: u64 },
    /// An eager envelope arrives from the wire.
    Arrive { src: usize, key: u64, len: usize },
    /// The any-source list machinery deactivates a posted entry (the
    /// "stall" transition: the request moved to NewMadeleine and its CH3
    /// entry must be lazily skipped, never matched).
    Deactivate { pick: usize },
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        // src 0 stands for MPI_ANY_SOURCE (the stub proptest has no
        // `option::of` combinator).
        (0usize..=3, 0u64..4).prop_map(|(src, key)| QOp::Post {
            src: (src > 0).then_some(src),
            key,
        }),
        (1usize..=3, 0u64..4, 1usize..2048)
            .prop_map(|(src, key, len)| QOp::Arrive { src, key, len }),
        (0usize..8).prop_map(|pick| QOp::Deactivate { pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192, // pure queue ops, no simulation: cheap to run wide
        .. ProptestConfig::default()
    })]

    /// For ANY interleaving of posts, arrivals and any-source stalls, a
    /// (src, key) envelope is never simultaneously claimable from both
    /// queues: each transition either matches-and-removes or enqueues on
    /// exactly one side. Verified against a shadow model that the real
    /// queue must agree with step by step — return values, lengths, byte
    /// accounting and probe results included.
    #[test]
    fn posted_and_unexpected_stay_disjoint(ops in proptest::collection::vec(qop_strategy(), 1..60)) {
        let table = RequestTable::new();
        let q = Ch3Queues::new();
        // Shadow model: live posted entries (with their shared active
        // flags) and unexpected messages, both in queue order.
        let mut posted: Vec<(Option<usize>, u64, std::sync::Arc<std::sync::atomic::AtomicBool>)> = Vec::new();
        let mut unex: Vec<(usize, u64, usize)> = Vec::new();
        let mut hwm = 0usize;
        for op in ops {
            match op {
                QOp::Post { src, key } => {
                    let hit = unex.iter().position(|&(s, k, _)| {
                        k == key && src.is_none_or(|want| want == s)
                    });
                    let req = table.create(ReqKind::Recv, ReqPath::Shm);
                    match (q.post(req, src, key), hit) {
                        (Err(m), Some(i)) => {
                            let (s, k, len) = unex.remove(i);
                            prop_assert_eq!(m.src(), s, "consumed the wrong sender");
                            prop_assert_eq!(m.key(), k);
                            match m {
                                UnexMsg::Eager { data, .. } => prop_assert_eq!(data.len(), len),
                                UnexMsg::Rts { .. } => prop_assert!(false, "model only feeds eagers"),
                            }
                        }
                        (Ok(flag), None) => posted.push((src, key, flag)),
                        (Err(_), None) => prop_assert!(false, "queue invented an unexpected hit"),
                        (Ok(_), Some(_)) => prop_assert!(false, "queue missed a waiting unexpected"),
                    }
                }
                QOp::Arrive { src, key, len } => {
                    let hit = posted.iter().position(|(ps, pk, _)| {
                        *pk == key && ps.is_none_or(|p| p == src)
                    });
                    match (q.match_arrival(src, key), hit) {
                        (Some(e), Some(i)) => {
                            let (ps, pk, _) = posted.remove(i);
                            prop_assert_eq!(e.src, ps, "matched out of posted order");
                            prop_assert_eq!(e.key, Some(pk));
                        }
                        (None, None) => {
                            q.store_unexpected(UnexMsg::Eager {
                                src,
                                key,
                                data: NmBuf::from(Bytes::from(vec![0u8; len])),
                            });
                            unex.push((src, key, len));
                        }
                        (Some(_), None) => prop_assert!(false, "matched a receive the model never posted"),
                        (None, Some(_)) => prop_assert!(false, "queue missed a posted receive"),
                    }
                }
                QOp::Deactivate { pick } => {
                    if !posted.is_empty() {
                        let (_, _, flag) = posted.remove(pick % posted.len());
                        flag.store(false, Ordering::Release);
                    }
                }
            }
            // THE invariant: nothing in the unexpected queue has a live
            // posted receive that would claim it.
            for &(s, k, _) in &unex {
                prop_assert!(
                    !posted.iter().any(|(ps, pk, _)| *pk == k && ps.is_none_or(|p| p == s)),
                    "(src {s}, key {k}) sits unexpected while a matching receive is posted"
                );
            }
            // The real queue must agree with the model on every observable.
            let bytes: usize = unex.iter().map(|&(_, _, len)| len).sum();
            hwm = hwm.max(bytes);
            prop_assert_eq!(q.posted_len(), posted.len());
            prop_assert_eq!(q.unexpected_len(), unex.len());
            prop_assert_eq!(q.unexpected_bytes(), bytes);
            prop_assert_eq!(q.unexpected_hwm(), hwm);
            for key in 0..4u64 {
                for src in [None, Some(1), Some(2), Some(3)] {
                    let want = unex
                        .iter()
                        .find(|&&(s, k, _)| k == key && src.is_none_or(|w| w == s))
                        .map(|&(s, _, len)| (s, len));
                    prop_assert_eq!(q.probe(src, key), want, "probe disagrees with model");
                }
            }
        }
    }
}

// --- Observability histogram laws ---------------------------------------

use mpich2_nmad_repro::obs::{Histogram, HIST_BUCKETS};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact q-quantile of a value set under the same 1-based-rank convention
/// `Histogram::quantile_bounds` documents.
fn exact_quantile(values: &mut [u64], q: f64) -> u64 {
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).max(1);
    values[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, // pure data-structure checks — cheap
        .. ProptestConfig::default()
    })]

    /// Bucket edges are monotone and every value lands in the bucket
    /// whose inclusive edges bound it.
    #[test]
    fn histogram_buckets_bound_their_values(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        for b in 1..HIST_BUCKETS {
            prop_assert!(Histogram::lower_edge(b) > Histogram::upper_edge(b - 1) ||
                         Histogram::lower_edge(b) > Histogram::lower_edge(b - 1),
                         "bucket edges not monotone at {b}");
        }
        for &v in &values {
            let b = Histogram::bucket_of(v);
            prop_assert!(b < HIST_BUCKETS);
            prop_assert!(Histogram::lower_edge(b) <= v && v <= Histogram::upper_edge(b),
                         "{v} outside bucket {b} edges [{}, {}]",
                         Histogram::lower_edge(b), Histogram::upper_edge(b));
        }
    }

    /// Count, sum, min and max are conserved exactly (no sampling, no
    /// saturation below u128 sums).
    #[test]
    fn histogram_conserves_count_and_sum(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), values.iter().copied().min());
        prop_assert_eq!(h.max(), values.iter().copied().max());
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
    }

    /// Merge is commutative, associative, and equal to the histogram of
    /// the concatenated value sets — the property that makes per-rank
    /// registries mergeable into a job-wide one without bias.
    #[test]
    fn histogram_merge_is_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // Commutativity.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Concatenation identity.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    /// The quantile-bucket bounds always bracket the exact quantile of
    /// the recorded values.
    #[test]
    fn histogram_quantile_bounds_bracket_exact_quantile(
        mut values in proptest::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
        prop_assert!(lo <= hi);
        let exact = exact_quantile(&mut values, q);
        prop_assert!(lo <= exact && exact <= hi,
                     "q={q}: exact quantile {exact} outside bucket bounds [{lo}, {hi}]");
        // Degenerate bounds recover the extremes exactly.
        prop_assert_eq!(h.quantile_bounds(0.0).unwrap().0, Histogram::lower_edge(Histogram::bucket_of(*values.first().unwrap())));
        prop_assert_eq!(h.quantile_bounds(1.0).unwrap().1, Histogram::upper_edge(Histogram::bucket_of(*values.last().unwrap())));
    }

    /// An empty histogram reports empty aggregates and no quantiles.
    #[test]
    fn empty_histogram_is_empty(q in 0.0f64..1.0) {
        let h = Histogram::new();
        prop_assert_eq!(h.count(), 0);
        prop_assert_eq!(h.sum(), 0);
        prop_assert_eq!(h.min(), None);
        prop_assert_eq!(h.max(), None);
        prop_assert_eq!(h.mean(), None);
        prop_assert_eq!(h.quantile_bounds(q), None);
    }
}


// ---------------------------------------------------------------------
// CH3 matching engine under *wildcard keys*: ANY_SOURCE × ANY_TAG ×
// arbitrary post/arrival interleavings. Extends the disjointness test
// above (concrete keys only) with `post_any_key` entries and pins the
// FIFO laws via per-arrival ids.
// ---------------------------------------------------------------------

/// One step of a random wildcard-matching schedule.
#[derive(Clone, Debug)]
enum WOp {
    /// Post a receive: src `None` = MPI_ANY_SOURCE, key `None` = wildcard.
    Post { src: Option<usize>, key: Option<u64> },
    /// An envelope arrives from `src` under `key`.
    Arrive { src: usize, key: u64 },
    /// Deactivate the `pick`-th live posted entry (any-source stall).
    Deactivate { pick: usize },
}

fn wop_strategy() -> impl Strategy<Value = WOp> {
    prop_oneof![
        // src 0 = MPI_ANY_SOURCE, key 3 = wildcard (the stub proptest
        // has no `option::of` combinator).
        3 => (0usize..=3, 0u64..=3).prop_map(|(src, key)| WOp::Post {
            src: (src > 0).then_some(src),
            key: (key < 3).then_some(key),
        }),
        4 => (1usize..=3, 0u64..3).prop_map(|(src, key)| WOp::Arrive { src, key }),
        1 => (0usize..8).prop_map(|pick| WOp::Deactivate { pick }),
    ]
}

/// Mirror of one posted receive.
#[derive(Clone, Debug)]
struct WPost {
    req: mpich2_nmad_repro::mpi_ch3::Req,
    src: Option<usize>,
    key: Option<u64>,
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
    active: bool,
}

fn wpost_matches(p: &WPost, src: usize, key: u64) -> bool {
    p.active && p.src.is_none_or(|s| s == src) && p.key.is_none_or(|k| k == key)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128, // pure queue ops, no simulation: cheap to run wide
        .. ProptestConfig::default()
    })]

    /// Under any interleaving of posts (including ANY_SOURCE and
    /// wildcard-key), arrivals, and deactivations:
    ///
    /// * posted ∩ unexpected = ∅ — no queued unexpected message is
    ///   satisfiable by a live posted entry;
    /// * every match consumes exactly the entry MPI's ordering rules
    ///   name: the oldest satisfiable posted entry (post order, verified
    ///   by request identity) or the oldest satisfiable unexpected
    ///   message (arrival order, verified by an id stamped into the
    ///   payload) — which implies FIFO per (src, key).
    #[test]
    fn wildcard_matching_is_fifo_and_disjoint(
        ops in proptest::collection::vec(wop_strategy(), 1..60),
    ) {
        let table = RequestTable::new();
        let q = Ch3Queues::new();
        let mut posts: Vec<WPost> = Vec::new();           // mirror, post order
        let mut unexq: Vec<(usize, usize, u64)> = Vec::new(); // (id, src, key), arrival order
        let mut next_id = 0usize;
        for op in &ops {
            match *op {
                WOp::Post { src, key } => {
                    let req = table.create(ReqKind::Recv, ReqPath::Shm);
                    let outcome = match key {
                        Some(k) => q.post(req, src, k),
                        None => q.post_any_key(req, src),
                    };
                    // The oldest satisfiable unexpected message, per the model.
                    let expect = unexq.iter().position(|&(_, s, k)| {
                        src.is_none_or(|w| w == s) && key.is_none_or(|w| w == k)
                    });
                    match (outcome, expect) {
                        (Err(m), Some(pos)) => {
                            let UnexMsg::Eager { data, .. } = m else {
                                prop_assert!(false, "model only feeds eagers");
                                unreachable!();
                            };
                            let got = usize::from_le_bytes(data[..8].try_into().unwrap());
                            prop_assert_eq!(got, unexq[pos].0,
                                "post consumed a different message than the oldest satisfiable (FIFO break)");
                            unexq.remove(pos);
                        }
                        (Ok(flag), None) => posts.push(WPost { req, src, key, flag, active: true }),
                        (Err(_), None) => prop_assert!(false, "queue invented an unexpected hit"),
                        (Ok(_), Some(_)) => prop_assert!(false, "queue missed a waiting unexpected"),
                    }
                }
                WOp::Arrive { src, key } => {
                    let id = next_id;
                    next_id += 1;
                    let hit = q.match_arrival(src, key);
                    let expect = posts.iter().position(|p| wpost_matches(p, src, key));
                    match (hit, expect) {
                        (Some(entry), Some(pos)) => {
                            prop_assert_eq!(entry.req, posts[pos].req,
                                "matched a different receive than the oldest satisfiable post");
                            posts.remove(pos);
                        }
                        (None, None) => {
                            q.store_unexpected(UnexMsg::Eager {
                                src,
                                key,
                                data: NmBuf::from(Bytes::from(id.to_le_bytes().to_vec())),
                            });
                            unexq.push((id, src, key));
                        }
                        (Some(_), None) => prop_assert!(false, "matched a receive the model never posted"),
                        (None, Some(_)) => prop_assert!(false, "queue missed a posted receive"),
                    }
                }
                WOp::Deactivate { pick } => {
                    let live: Vec<usize> = posts
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.active)
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let i = live[pick % live.len()];
                        posts[i].active = false;
                        posts[i].flag.store(false, Ordering::Release);
                    }
                }
            }
            // THE invariant: posted ∩ unexpected = ∅.
            for &(_, s, k) in &unexq {
                prop_assert!(
                    !posts.iter().any(|p| wpost_matches(p, s, k)),
                    "(src {s}, key {k}) sits unexpected while a matching receive is posted"
                );
            }
        }
        // Mirrors and real queue agree on the survivors.
        prop_assert_eq!(q.unexpected_len(), unexq.len());
        prop_assert_eq!(q.posted_len(), posts.iter().filter(|p| p.active).count());
    }
}
