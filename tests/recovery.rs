//! Communicator-recovery acceptance: revoke, fault-tolerant agreement,
//! shrink/rebuild and joiner re-admission under churn (DESIGN.md §13).
//!
//! The chaos scenario (64 ranks, one per node, times in simulated µs):
//!
//! * **Phase A** (t≈0): healthy epoch-0 collectives over the 63 initial
//!   ranks (barrier + byte-exact allreduce).
//! * **t=400, crash #1**: node 9 dies. Rank 0 detects it through a failed
//!   rendezvous and **revokes** epoch 0 while every other survivor is
//!   stuck inside an epoch-0 barrier; the poison gossip must quiesce
//!   those barriers with counted revoked completions — no hangs, no
//!   silent drops.
//! * **Shrink #1**: survivors agree on the survivor set, advance to
//!   epoch 1, re-rank densely, and run a byte-exact allreduce.
//! * **t=1510, crash #2 (mid-agreement)**: node 23 dies *inside* the
//!   second shrink's agreement, which it never enters. All survivors must
//!   still terminate with the identical survivor set and rebuild epoch 2.
//! * **t=2000, join**: node 63 comes up, is admitted via the join-merge
//!   path into epoch 3, and participates in a byte-exact allreduce over
//!   the merged group.
//! * Every rank ends with `peer_entries == 0` for both corpses, stale
//!   cross-epoch frames were counted (never resurrected), and the whole
//!   run replays bit-identically under the same seed.
//!
//! Satellites riding along: the agreement-layered `try_barrier` returns
//! the *same* verdict on every survivor (4-seed sweep), a peer stalling
//! past `suspect_after` recovers to Up instead of being probed to death
//! (polling *and* PIOMan background progress), and an ANY_SOURCE wildcard
//! posted across a revoke/shrink completes with live data while its
//! parked specific-from-the-corpse fails with a counted error.

use mpich2_nmad_repro::mpi_ch3::comm::Comm;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::{MembershipConfig, RetryConfig};
use mpich2_nmad_repro::obs::ObsConfig;
use mpich2_nmad_repro::simnet::{
    Cluster, FaultPlan, FaultSpec, NicModel, NodeWindow, Placement, SimDuration, SimTime,
};

const RANKS: usize = 64;
const JOINER: usize = 63;
const DEAD1: usize = 9;
const DEAD2: usize = 23;

const T_CRASH1: u64 = 400; // µs
const T_REVOKE: u64 = 450;
const T_PHASE_C: u64 = 1_500;
const T_CRASH2: u64 = 1_510;
const T_JOIN: u64 = 2_000;
const T_JOIN_SAFE: u64 = 2_050;

/// Out-of-band rendezvous sequence for the join handshake (any value both
/// sides agree on; OP_JOIN keys share no instance with other ops).
const JOIN_SEQ: u32 = 777;

const TAG_CORPSE: u32 = 31;
/// Above the 16 KiB eager threshold: the detection send must travel the
/// rendezvous path so the corpse leaves an in-flight handshake to abort.
const RDV_LEN: usize = 64 * 1024;

fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn micros(t: u64) -> SimTime {
    SimTime::ZERO + SimDuration::micros(t)
}

/// Deterministic payload keyed by (src, round).
fn fill(src: usize, round: usize, len: usize) -> Vec<u8> {
    let mut x = 0xFEC0_u64 ^ ((src as u64 + 1) << 32) ^ ((round as u64 + 1) * 0x9E37_79B9);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// Busy-wait (simulated compute) until the rank's clock reaches `t` µs,
/// chunked so the rank keeps acking while it "computes".
fn wait_until(mpi: &MpiHandle, t: u64) {
    loop {
        let now = mpi.now().as_nanos();
        let target = t * 1_000;
        if now >= target {
            return;
        }
        let step = (target - now).min(5_000);
        mpi.compute(SimDuration::nanos(step));
        let _ = mpi.iprobe(Src::Any, u32::MAX);
    }
}

/// What each rank reports; the full vector is part of the replay
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Report {
    /// Epochs traversed: [initial, after shrink #1, after shrink #2,
    /// after the join-merge].
    epochs: Vec<u8>,
    /// Member lists after each recovery step.
    shrink1: Vec<usize>,
    shrink2: Vec<usize>,
    merged: Vec<usize>,
    /// f64 bit patterns of the four allreduce results (byte-exactness is
    /// asserted by comparing these across ranks).
    sums: Vec<u64>,
    /// Did this rank's `comm_revoke` commit a fresh revocation?
    revoked_fresh: bool,
    death_log: Vec<(usize, u64, u64)>,
}

fn recovery_rank(mpi: &MpiHandle) -> Report {
    let me = mpi.rank();
    let initial: Vec<usize> = (0..RANKS - 1).collect(); // 0..=62
    let s1: Vec<usize> = initial.iter().copied().filter(|&r| r != DEAD1).collect();
    let s2: Vec<usize> = s1.iter().copied().filter(|&r| r != DEAD2).collect();

    if me == JOINER {
        // Not born until T_JOIN; then admitted via the join-merge path and
        // immediately a full participant in a collective.
        wait_until(mpi, T_JOIN);
        let merged = mpi.comm_join(0, JOIN_SEQ);
        let sum3 = mpi.comm_allreduce_sum(&merged, &[me as f64]);
        return Report {
            epochs: vec![merged.epoch()],
            merged: merged.members().to_vec(),
            sums: vec![sum3[0].to_bits()],
            death_log: mpi.death_log(),
            ..Report::default()
        };
    }

    // --- Phase A: healthy epoch-0 collectives ---------------------------
    let c0 = Comm::from_members(mpi, 0, initial.clone());
    mpi.comm_barrier(&c0);
    let sum0 = mpi.comm_allreduce_sum(&c0, &[1.0])[0];
    assert_eq!(sum0, initial.len() as f64, "healthy allreduce wrong on {me}");

    if me == DEAD1 {
        wait_until(mpi, T_CRASH1);
        mpi.crash();
        return Report::default();
    }

    // --- Phase B: revoke under a stuck collective -----------------------
    // Everyone but rank 0 dives into an epoch-0 barrier that can never
    // complete (a member is dead). Rank 0 detects the death the hard way
    // (failed rendezvous), revokes the epoch, and the poison must release
    // every stuck survivor with counted revoked completions.
    wait_until(mpi, T_REVOKE);
    let mut revoked_fresh = false;
    if me == 0 {
        let s = mpi.isend(DEAD1, TAG_CORPSE, &fill(me, 0, RDV_LEN));
        let err = mpi
            .wait_result(s)
            .expect_err("rendezvous at a corpse must fail");
        assert_eq!(err.peer, DEAD1);
        revoked_fresh = mpi.comm_revoke(&c0);
        assert!(revoked_fresh, "first revocation of epoch 0 must be fresh");
    }
    mpi.comm_barrier(&c0); // revoked: falls through, never hangs

    // --- Shrink #1: agree, re-rank, seal, byte-exact allreduce ----------
    let c1 = mpi.comm_shrink(&c0);
    assert_eq!(c1.members(), &s1[..], "shrink #1 roster wrong on {me}");
    let sum1 = mpi.comm_allreduce_sum(&c1, &[(me + 1) as f64])[0];

    if me == DEAD2 {
        // Dies mid-agreement: everyone else enters shrink #2 at T_PHASE_C;
        // this rank never does.
        wait_until(mpi, T_CRASH2);
        mpi.crash();
        return Report {
            epochs: vec![c0.epoch(), c1.epoch()],
            shrink1: c1.members().to_vec(),
            sums: vec![sum0.to_bits(), sum1.to_bits()],
            death_log: mpi.death_log(),
            ..Report::default()
        };
    }

    // --- Shrink #2: a member dies inside the agreement ------------------
    wait_until(mpi, T_PHASE_C);
    let c2 = mpi.comm_shrink(&c1);
    assert_eq!(c2.members(), &s2[..], "shrink #2 roster wrong on {me}");
    let sum2 = mpi.comm_allreduce_sum(&c2, &[(me * me) as f64])[0];

    // --- Phase D: joiner re-admission into epoch 3 ----------------------
    wait_until(mpi, T_JOIN_SAFE);
    let c3 = mpi.comm_accept(&c2, JOINER, JOIN_SEQ);
    let sum3 = mpi.comm_allreduce_sum(&c3, &[me as f64])[0];

    // --- Final hygiene: corpses fully drained ---------------------------
    assert_eq!(mpi.peer_entries(DEAD1), 0, "rank {me}: corpse 9 leaked");
    assert_eq!(mpi.peer_entries(DEAD2), 0, "rank {me}: corpse 23 leaked");
    Report {
        epochs: vec![c0.epoch(), c1.epoch(), c2.epoch(), c3.epoch()],
        shrink1: c1.members().to_vec(),
        shrink2: c2.members().to_vec(),
        merged: c3.members().to_vec(),
        sums: vec![
            sum0.to_bits(),
            sum1.to_bits(),
            sum2.to_bits(),
            sum3.to_bits(),
        ],
        revoked_fresh,
        death_log: mpi.death_log(),
    }
}

/// Aggressive timing so the scenario fits in a few ms of simulated time
/// (same constants as the churn acceptance).
fn recovery_stack(seed: u64) -> StackConfig {
    let mut stack = StackConfig::mpich2_nmad(false).with_obs(ObsConfig::full());
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); RANKS];
    nodes[DEAD1] = vec![NodeWindow::crash(micros(T_CRASH1))];
    nodes[DEAD2] = vec![NodeWindow::crash(micros(T_CRASH2))];
    nodes[JOINER] = vec![NodeWindow::join(micros(T_JOIN))];
    stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(50),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ))
}

fn run_recovery(seed: u64) -> (RunOutcome, Vec<Report>) {
    let cluster = Cluster::new(RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(RANKS, &cluster);
    let stack = recovery_stack(seed);
    run_mpi_collect(&cluster, &placement, &stack, RANKS, recovery_rank)
}

#[test]
fn revoke_agree_shrink_join_under_churn() {
    let seed = 0x9E10_0000 ^ seed_base();
    let (outcome, reports) = run_recovery(seed);

    let initial: Vec<usize> = (0..RANKS - 1).collect();
    let s1: Vec<usize> = initial.iter().copied().filter(|&r| r != DEAD1).collect();
    let s2: Vec<usize> = s1.iter().copied().filter(|&r| r != DEAD2).collect();
    let mut merged = s2.clone();
    merged.push(JOINER);

    let survivors: Vec<usize> = s2.clone();
    let expect_sums = [
        (initial.len() as f64).to_bits(),
        s1.iter().map(|&r| (r + 1) as f64).sum::<f64>().to_bits(),
        s2.iter().map(|&r| (r * r) as f64).sum::<f64>().to_bits(),
        merged.iter().map(|&r| r as f64).sum::<f64>().to_bits(),
    ];

    // Every survivor walked the same epoch path, agreed on the same
    // rosters, and produced bit-identical collective results.
    for &r in &survivors {
        let rep = &reports[r];
        assert_eq!(rep.epochs, vec![0, 1, 2, 3], "rank {r} epoch path");
        assert_eq!(rep.shrink1, s1, "rank {r} shrink #1 roster");
        assert_eq!(rep.shrink2, s2, "rank {r} shrink #2 roster");
        assert_eq!(rep.merged, merged, "rank {r} merged roster");
        assert_eq!(rep.sums, expect_sums, "rank {r} allreduce bits");
        assert_eq!(rep.revoked_fresh, r == 0, "rank {r} revocation freshness");
    }
    // The joiner saw the merged epoch and the same final allreduce.
    assert_eq!(reports[JOINER].epochs, vec![3]);
    assert_eq!(reports[JOINER].merged, merged);
    assert_eq!(reports[JOINER].sums, vec![expect_sums[3]]);
    // The mid-agreement corpse still completed shrink #1 before dying.
    assert_eq!(reports[DEAD2].shrink1, s1);
    assert_eq!(reports[DEAD2].sums[..2], expect_sums[..2]);

    // Detection latency (E21 raw material): prompt, never premature.
    for (corpse, crash_us) in [(DEAD1, T_CRASH1), (DEAD2, T_CRASH2)] {
        let crash_ns = crash_us * 1_000;
        let lats: Vec<u64> = reports
            .iter()
            .flat_map(|rep| rep.death_log.iter())
            .filter(|&&(p, _, _)| p == corpse)
            .map(|&(_, t, _)| {
                assert!(t > crash_ns, "verdict for {corpse} predates its crash");
                t - crash_ns
            })
            .collect();
        assert!(!lats.is_empty());
        println!(
            "corpse {corpse}: detection min {}µs max {}µs across {} observers",
            lats.iter().min().unwrap() / 1_000,
            lats.iter().max().unwrap() / 1_000,
            lats.len()
        );
    }

    // Epoch hygiene moved in every dimension the tentpole touches: the
    // revocation flooded the job, in-flight epoch-0 ops were quiesced with
    // counted errors, and stale cross-epoch frames were counted — never
    // resurrected into per-peer state (the peer_entries asserts above).
    let m = outcome.membership_totals();
    println!("membership totals: {m:?}");
    assert!(
        m.revoked_epochs >= s1.len() as u64,
        "revocation never flooded: {m:?}"
    );
    assert!(m.revoked_ops > 0, "revoke quiesced nothing: {m:?}");
    assert!(m.stale_epoch > 0, "no stale cross-epoch frame was counted: {m:?}");
    assert!(m.dead_peers > 0 && m.drained_entries > 0, "{m:?}");
    let drops = outcome.fault_counters.expect("fault plan armed").node_drops;
    assert!(drops > 0, "node windows never ate a frame");
}

#[test]
fn recovery_replays_bit_identically() {
    let seed = 0x9E10_0000 ^ seed_base();
    let (a, ra) = run_recovery(seed);
    let (b, rb) = run_recovery(seed);
    assert_eq!(ra, rb, "per-rank reports diverged between replays");
    assert_eq!(a.sim.final_time, b.sim.final_time);
    assert_eq!(a.sim.events, b.sim.events);
    assert_eq!(a.nm_stats, b.nm_stats, "per-rank core stats diverged");
    assert_eq!(a.rail_counters, b.rail_counters);
    assert_eq!(a.fault_counters, b.fault_counters);
    assert_eq!(a.membership_totals(), b.membership_totals());
}

// ---------------------------------------------------------------------
// Satellite: try_barrier verdicts agree on every survivor (4-seed sweep)
// ---------------------------------------------------------------------

const TB_RANKS: usize = 16;
const TB_DEAD: usize = 5;
const TB_ENTER: u64 = 300; // µs
const TB_CRASH: u64 = 310;

fn try_barrier_rank(mpi: &MpiHandle) -> Option<Option<usize>> {
    let me = mpi.rank();
    let group: Vec<usize> = (0..TB_RANKS).collect();
    if me == TB_DEAD {
        // Dies just after the others enter the barrier, never entering it
        // himself — the classic split-observation scenario.
        wait_until(mpi, TB_CRASH);
        mpi.crash();
        return None;
    }
    wait_until(mpi, TB_ENTER);
    let verdict = mpi.try_barrier(&group).err().map(|e| e.peer);
    Some(verdict)
}

fn tb_stack(seed: u64) -> StackConfig {
    let mut stack = StackConfig::mpich2_nmad(false);
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); TB_RANKS];
    nodes[TB_DEAD] = vec![NodeWindow::crash(micros(TB_CRASH))];
    stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(50),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ))
}

#[test]
fn try_barrier_verdict_is_uniform_across_survivors() {
    // The pre-agreement try_barrier had ULFM's documented inconsistency:
    // members that heard the poison returned Err, members whose exchanges
    // predated the verdict returned Ok. The layered agreement must produce
    // the SAME verdict on every survivor — under four different fault
    // timings.
    for offset in 0..4u64 {
        let seed = 0x7B47_0000 ^ seed_base() ^ offset;
        let cluster = Cluster::new(TB_RANKS, 1, vec![NicModel::connectx_ib()]);
        let placement = Placement::one_per_node(TB_RANKS, &cluster);
        let (_, verdicts) =
            run_mpi_collect(&cluster, &placement, &tb_stack(seed), TB_RANKS, try_barrier_rank);
        let survivor_verdicts: Vec<Option<usize>> = verdicts
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != TB_DEAD)
            .map(|(_, v)| v.expect("survivor returned a verdict"))
            .collect();
        assert!(
            survivor_verdicts.iter().all(|&v| v == Some(TB_DEAD)),
            "seed offset {offset}: split verdicts {survivor_verdicts:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Satellite: Suspect → Up recovery (never probed to death)
// ---------------------------------------------------------------------

const SU_RANKS: usize = 4;
const SU_SLOW: usize = 1;
const SU_HANG_FROM: u64 = 300;
/// 70µs of silence: enough attributed timeouts to go Suspect
/// (suspect_after = 2 at a 20µs retry timeout plus 25µs probe intervals),
/// but far under the 200µs min_silence floor this stack configures — Dead
/// must be unreachable no matter how many probes pile up, on every side:
/// the staller's own inbound goes silent too (its NIC is blocked), so the
/// floor must cover the window plus the pre-hang gap since its last
/// inbound frame.
const SU_HANG_UNTIL: u64 = 370;
const TAG_SU: u32 = 41;

fn su_ring(mpi: &MpiHandle, round: usize) {
    let me = mpi.rank();
    let right = (me + 1) % SU_RANKS;
    let left = (me + SU_RANKS - 1) % SU_RANKS;
    let (data, st) = mpi.sendrecv(right, TAG_SU, &fill(me, round, 256), Src::Rank(left), TAG_SU);
    assert_eq!(st.source, left);
    assert_eq!(&data[..], &fill(left, round, 256)[..]);
}

fn suspect_rank(mpi: &MpiHandle) -> Vec<(usize, u64, u64)> {
    let me = mpi.rank();
    // Warmup, then verified ring traffic pinned across the hang window:
    // the stall must surface as Suspect and then be re-credited Up by the
    // first inbound frame — never promoted to a death verdict.
    for round in 0..10 {
        su_ring(mpi, round);
    }
    wait_until(mpi, SU_HANG_FROM - 20);
    for round in 10..50 {
        su_ring(mpi, round);
    }
    // Post-recovery traffic so the re-credit has inbound frames to act on.
    wait_until(mpi, SU_HANG_UNTIL + 100);
    for round in 50..55 {
        su_ring(mpi, round);
    }
    for r in 0..SU_RANKS {
        assert!(mpi.is_alive(r), "rank {me}: {r} falsely declared dead");
    }
    mpi.death_log()
}

fn suspect_stack(seed: u64, pioman: bool) -> StackConfig {
    let mut stack = StackConfig::mpich2_nmad(pioman);
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); SU_RANKS];
    nodes[SU_SLOW] = vec![NodeWindow::hang(micros(SU_HANG_FROM), micros(SU_HANG_UNTIL))];
    stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(200),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ))
}

fn assert_suspect_recovery(outcome: &RunOutcome, logs: &[Vec<(usize, u64, u64)>]) {
    for (r, log) in logs.iter().enumerate() {
        assert!(log.is_empty(), "rank {r} issued a death verdict: {log:?}");
    }
    let m = outcome.membership_totals();
    assert_eq!(m.dead_peers, 0, "stall promoted to death: {m:?}");
    // The stall was *seen*: at least one Up→Suspect and the matching
    // Suspect→Up re-credit.
    assert!(
        m.transitions >= 2,
        "the stall never registered as Suspect: {m:?}"
    );
}

#[test]
fn suspect_peer_recovers_to_up() {
    let seed = 0x5A5A_0000 ^ seed_base();
    let cluster = Cluster::new(SU_RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(SU_RANKS, &cluster);
    let (outcome, logs) = run_mpi_collect(
        &cluster,
        &placement,
        &suspect_stack(seed, false),
        SU_RANKS,
        suspect_rank,
    );
    assert_suspect_recovery(&outcome, &logs);
}

#[test]
fn suspect_peer_recovers_to_up_under_background_progress() {
    // Same contract on the PIOMan path: background-progress acks must be
    // credited with arm-time awareness, so a recovered staller is never
    // charged for timeouts armed before its frames landed.
    let seed = 0x5A5A_1111 ^ seed_base();
    let cluster = Cluster::new(SU_RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(SU_RANKS, &cluster);
    let (outcome, logs) = run_mpi_collect(
        &cluster,
        &placement,
        &suspect_stack(seed, true),
        SU_RANKS,
        suspect_rank,
    );
    assert_suspect_recovery(&outcome, &logs);
}

// ---------------------------------------------------------------------
// Satellite: ANY_SOURCE wildcard across a revoke/shrink
// ---------------------------------------------------------------------

const AS_RANKS: usize = 8;
const AS_DEAD: usize = 3;
const AS_CRASH: u64 = 200;
const AS_AFTER: u64 = 210;
const TAG_WILD: u32 = 51;

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct WildReport {
    wild_src: Option<usize>,
    wild_bytes: u64,
    parked_failed_on: Option<usize>,
    leaked: usize,
}

fn wildcard_rank(mpi: &MpiHandle) -> WildReport {
    let me = mpi.rank();
    let initial: Vec<usize> = (0..AS_RANKS).collect();
    let survivors: Vec<usize> = initial.iter().copied().filter(|&r| r != AS_DEAD).collect();
    let c0 = Comm::from_members(mpi, 0, initial);
    mpi.comm_barrier(&c0);

    // The wildcard and its parked specific are posted BEFORE the crash and
    // survive revoke + shrink: user-context receives are not epoch-keyed,
    // so teardown of epoch 0 must not touch them.
    let mut posted = None;
    if me == 0 {
        let r_any = mpi.irecv(Src::Any, TAG_WILD);
        let r_spec = mpi.irecv(Src::Rank(AS_DEAD), TAG_WILD);
        posted = Some((r_any, r_spec));
    }

    if me == AS_DEAD {
        wait_until(mpi, AS_CRASH);
        mpi.crash();
        return WildReport::default();
    }

    wait_until(mpi, AS_AFTER);
    if me == 0 {
        let s = mpi.isend(AS_DEAD, TAG_CORPSE, &fill(me, 0, RDV_LEN));
        let err = mpi
            .wait_result(s)
            .expect_err("rendezvous at a corpse must fail");
        assert_eq!(err.peer, AS_DEAD);
        mpi.comm_revoke(&c0);
    }
    let c1 = mpi.comm_shrink(&c0);
    assert_eq!(c1.members(), &survivors[..]);

    // After the rebuild, a live sender completes the wildcard; the parked
    // specific from the corpse must already be (or soon be) failed with a
    // counted error — and neither may have matched any of the stale
    // epoch-0 collective frames that flew during the teardown.
    let mut rep = WildReport::default();
    if me == 1 {
        mpi.send(0, TAG_WILD, &fill(1, 7, 2048));
    }
    if me == 0 {
        let (r_any, r_spec) = posted.unwrap();
        let (data, st) = mpi.wait_data(r_any);
        let (data, st) = (data.expect("wildcard must match live data"), st.unwrap());
        assert_eq!(st.source, 1, "wildcard matched a non-live source");
        assert_eq!(&data[..], &fill(1, 7, 2048)[..], "wildcard payload corrupt");
        rep.wild_src = Some(st.source);
        rep.wild_bytes = data.len() as u64;
        let err = mpi
            .wait_result(r_spec)
            .expect_err("parked specific from the corpse must fail");
        rep.parked_failed_on = Some(err.peer);
    }
    mpi.comm_barrier(&c1);
    rep.leaked = mpi.peer_entries(AS_DEAD);
    rep
}

#[test]
fn any_source_survives_revoke_and_shrink() {
    let seed = 0xA57A_0000 ^ seed_base();
    let mut stack = StackConfig::mpich2_nmad(false);
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); AS_RANKS];
    nodes[AS_DEAD] = vec![NodeWindow::crash(micros(AS_CRASH))];
    let stack = stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(50),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ));
    let cluster = Cluster::new(AS_RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(AS_RANKS, &cluster);
    let (outcome, reports) = run_mpi_collect(&cluster, &placement, &stack, AS_RANKS, wildcard_rank);

    assert_eq!(reports[0].wild_src, Some(1));
    assert_eq!(reports[0].wild_bytes, 2048);
    assert_eq!(reports[0].parked_failed_on, Some(AS_DEAD));
    for (r, rep) in reports.iter().enumerate() {
        if r != AS_DEAD {
            assert_eq!(rep.leaked, 0, "rank {r} leaked corpse entries");
        }
    }
    let m = outcome.membership_totals();
    assert!(m.aborted_recvs > 0, "parked specific not counted: {m:?}");
    assert!(m.revoked_epochs > 0, "{m:?}");
}
