//! Workspace-level integration tests: full MPI jobs spanning every crate,
//! checking data integrity, ordering, and cross-stack agreement.

use std::sync::Arc;

use mpich2_nmad_repro::baselines;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::simnet::{Cluster, NodeId, Placement, SimDuration};
use parking_lot::Mutex;

/// Every stack variant under test.
fn all_stacks() -> Vec<StackConfig> {
    vec![
        StackConfig::mpich2_nmad(false),
        StackConfig::mpich2_nmad(true),
        StackConfig::mpich2_nmad_netmod(0),
        baselines::mvapich2(0),
        baselines::openmpi_btl(0),
        baselines::openmpi_pml(0),
    ]
}

/// Deterministic pseudo-random byte for (seed, index).
fn byte(seed: u64, i: usize) -> u8 {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i as u64)
        .wrapping_mul(0x9E3779B97F4A7C15);
    (x >> 33) as u8
}

#[test]
fn mixed_size_soak_every_stack() {
    // 6 ranks over 2 nodes (3+3): each rank sends a ladder of messages to
    // every other rank; payloads verified byte-for-byte. Sizes straddle
    // the eager/rendezvous boundary and the shm cell size.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::explicit(vec![
        NodeId(0),
        NodeId(0),
        NodeId(0),
        NodeId(1),
        NodeId(1),
        NodeId(1),
    ]);
    let sizes = [1usize, 100, 4 * 1024, 17 * 1024, 80 * 1024];
    for stack in all_stacks() {
        let name = stack.name.clone();
        let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 6, move |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            // Post all receives first, then send (avoids unexpected-queue
            // pressure being load-bearing).
            let mut recvs = Vec::new();
            for src in 0..n {
                if src == me {
                    continue;
                }
                for (k, _) in sizes.iter().enumerate() {
                    recvs.push((src, k, mpi.irecv(Src::Rank(src), k as u32)));
                }
            }
            let mut sends = Vec::new();
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                for (k, &sz) in sizes.iter().enumerate() {
                    let seed = (me * 100 + dst * 10 + k) as u64;
                    let data: Vec<u8> = (0..sz).map(|i| byte(seed, i)).collect();
                    sends.push(mpi.isend(dst, k as u32, &data));
                }
            }
            for (src, k, r) in recvs {
                let (data, status) = mpi.wait_data(r);
                let data = data.expect("payload");
                let seed = (src * 100 + me * 10 + k) as u64;
                assert_eq!(data.len(), sizes[k]);
                assert_eq!(status.unwrap().source, src);
                for (i, &b) in data.iter().enumerate() {
                    assert_eq!(b, byte(seed, i), "corrupt byte {i} from {src}");
                }
            }
            mpi.waitall(&sends);
            true
        });
        assert!(oks.into_iter().all(|b| b), "soak failed on {name}");
    }
}

#[test]
fn per_sender_ordering_every_stack() {
    // MPI guarantees matching order per (source, tag): 40 same-tag
    // messages from one sender must complete in send order.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    for stack in all_stacks() {
        let name = stack.name.clone();
        let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 2, move |mpi| {
            const N: usize = 40;
            if mpi.rank() == 0 {
                for i in 0..N {
                    // Alternate sizes so eager and rendezvous interleave.
                    let sz = if i % 3 == 2 { 40 * 1024 } else { 64 };
                    let data = vec![i as u8; sz];
                    mpi.send(1, 9, &data);
                }
                true
            } else {
                for i in 0..N {
                    let (data, _) = mpi.recv(Src::Rank(0), 9);
                    assert_eq!(data[0] as usize, i, "order violated");
                }
                true
            }
        });
        assert!(oks.into_iter().all(|b| b), "ordering failed on {name}");
    }
}

#[test]
fn any_source_fairness_under_load() {
    // Five senders flood a single ANY_SOURCE receiver; every message must
    // arrive exactly once, with per-sender order preserved.
    let cluster = Cluster::grid5000_opteron();
    let placement = Placement::explicit(vec![
        NodeId(0),
        NodeId(0), // shm sender
        NodeId(1),
        NodeId(2),
        NodeId(3),
        NodeId(4),
    ]);
    let stack = StackConfig::mpich2_nmad(false);
    const PER_SENDER: usize = 10;
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 6, move |mpi| {
        if mpi.rank() == 0 {
            let mut next = [0usize; 6];
            for _ in 0..5 * PER_SENDER {
                let (data, st) = mpi.recv(Src::Any, 1);
                let idx = data[0] as usize;
                assert_eq!(idx, next[st.source], "per-sender order from {}", st.source);
                next[st.source] += 1;
            }
            next[1..].iter().all(|&n| n == PER_SENDER)
        } else {
            for i in 0..PER_SENDER {
                mpi.compute(SimDuration::micros((mpi.rank() * 3) as u64));
                mpi.send(0, 1, &[i as u8]);
            }
            true
        }
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn collectives_agree_across_stacks() {
    // The same collective program must produce identical values on every
    // stack (timing differs; results must not).
    let cluster = Cluster::xeon_pair();
    let placement = Placement::block(8, &cluster);
    let mut reference: Option<Vec<f64>> = None;
    for stack in all_stacks() {
        let name = stack.name.clone();
        let (_, results) = run_mpi_collect(&cluster, &placement, &stack, 8, |mpi| {
            let r = mpi.rank() as f64;
            mpi.barrier();
            let s1 = mpi.allreduce_sum(&[r, r * r]);
            let blocks: Vec<bytes::Bytes> = (0..mpi.size())
                .map(|j| bytes::Bytes::from(vec![(mpi.rank() * 16 + j) as u8]))
                .collect();
            let got = mpi.alltoall(blocks);
            let checksum: f64 = got.iter().map(|b| b[0] as f64).sum();
            // allgather: rank i contributes [i; i+1]; verify shape+content.
            let gathered = mpi.allgather(bytes::Bytes::from(vec![
                mpi.rank() as u8;
                mpi.rank() + 1
            ]));
            let mut gsum = 0.0;
            for (i, b) in gathered.iter().enumerate() {
                assert_eq!(b.len(), i + 1);
                assert!(b.iter().all(|&x| x as usize == i));
                gsum += b.len() as f64;
            }
            // alltoallv with ragged sizes: block to rank j has j+1 bytes.
            let ragged: Vec<bytes::Bytes> = (0..mpi.size())
                .map(|j| bytes::Bytes::from(vec![mpi.rank() as u8; j + 1]))
                .collect();
            let rgot = mpi.alltoallv(ragged);
            for (i, b) in rgot.iter().enumerate() {
                assert_eq!(b.len(), mpi.rank() + 1, "ragged size from {i}");
                assert!(b.iter().all(|&x| x as usize == i));
            }
            mpi.barrier();
            s1[0] + s1[1] * 1000.0 + checksum + gsum
        });
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(r, &results, "stack {name} disagrees"),
        }
    }
}

#[test]
fn pioman_and_polling_deliver_identical_payloads() {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let collect = |pioman: bool| -> Vec<u8> {
        let stack = StackConfig::mpich2_nmad(pioman);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        run_mpi(
            &cluster,
            &placement,
            &stack,
            2,
            Arc::new(move |mpi: MpiHandle| {
                if mpi.rank() == 0 {
                    let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
                    mpi.send(1, 1, &data);
                } else {
                    let (d, _) = mpi.recv(Src::Rank(0), 1);
                    *o2.lock() = d.to_vec();
                }
            }),
        );
        let v = out.lock().clone();
        v
    };
    assert_eq!(collect(false), collect(true));
}

#[test]
fn sixtyfour_rank_job_completes() {
    // Scale check: a 64-rank allreduce + neighbour exchange over 10 nodes.
    let cluster = Cluster::grid5000_opteron();
    let placement = Placement::round_robin(64, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, sums) = run_mpi_collect(&cluster, &placement, &stack, 64, |mpi| {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        let r = mpi.irecv(Src::Rank(left), 1);
        let s = mpi.isend(right, 1, &[mpi.rank() as u8]);
        let (d, _) = mpi.wait_data(r);
        mpi.wait(s);
        assert_eq!(d.unwrap()[0] as usize, left);
        mpi.allreduce_sum(&[1.0])[0]
    });
    assert!(sums.into_iter().all(|s| s == 64.0));
}
