//! Copy-discipline proofs: the CopyMeter threaded through every layer
//! (MPI boundary → CH3 → NewMadeleine → fabric / Nemesis cells) must show
//! that the paper's bypass integration (§3.1) physically copies less than
//! the legacy netmod tunnel (§2.1.3, Fig. 2), and that copy accounting is
//! as deterministic as the payloads themselves.

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::sim_harness::{Scenario, Workload};
use mpich2_nmad_repro::simnet::{Cluster, CopySnapshot, FaultSpec, Placement};

/// Two ranks on two nodes: rank 0 sends `count` rendezvous-sized messages
/// to rank 1, which verifies every byte. Returns the job-wide copy totals.
fn run_large_messages(cfg: &StackConfig, count: usize, len: usize) -> CopySnapshot {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let (outcome, _): (RunOutcome, Vec<()>) =
        run_mpi_collect(&cluster, &placement, cfg, 2, move |mpi: &MpiHandle| {
            if mpi.rank() == 0 {
                for round in 0..count {
                    let payload = vec![round as u8; len];
                    mpi.send(1, round as u32, &payload);
                }
            } else {
                for round in 0..count {
                    let (data, status) = mpi.recv(Src::Rank(0), round as u32);
                    assert_eq!(status.len, len);
                    assert!(data.iter().all(|&b| b == round as u8));
                }
            }
            mpi.barrier();
        });
    outcome.copy
}

const LARGE: usize = 256 * 1024; // far above the 16 KiB eager threshold
const COUNT: usize = 6;

/// The headline claim: for the same large-message workload, the bypass
/// stack performs strictly fewer memcpys than the netmod tunnel — at
/// least one fewer *per message*, because the tunnel re-copies every
/// frame through the module-queue boundary (Fig. 2's nested handshake).
#[test]
fn bypass_copies_strictly_less_than_tunnel() {
    let bypass = run_large_messages(&StackConfig::mpich2_nmad(false), COUNT, LARGE);
    let tunnel = run_large_messages(&StackConfig::mpich2_nmad_netmod(0), COUNT, LARGE);

    assert!(
        bypass.memcpy_calls < tunnel.memcpy_calls,
        "bypass must copy fewer times: bypass [{bypass}] vs tunnel [{tunnel}]"
    );
    assert!(
        tunnel.memcpy_calls - bypass.memcpy_calls >= COUNT as u64,
        "tunnel must pay at least one extra memcpy per large message: \
         bypass [{bypass}] vs tunnel [{tunnel}] over {COUNT} messages"
    );
    assert!(
        bypass.bytes_copied < tunnel.bytes_copied,
        "bypass must move fewer payload bytes through memcpy: \
         bypass [{bypass}] vs tunnel [{tunnel}]"
    );
}

/// The bypass copy count per large message is a small constant — the MPI
/// boundary copy-in plus the receive-side reassembly — independent of
/// how many wire chunks or rails the transfer is split across.
#[test]
fn bypass_large_message_copy_budget() {
    let one = run_large_messages(&StackConfig::mpich2_nmad(false), 1, LARGE);
    let two = run_large_messages(&StackConfig::mpich2_nmad(false), 2, LARGE);
    let per_msg = two.since(&one);
    // Chunking shares the source allocation: splitting must show up as
    // refcount bumps, never as extra memcpys of payload bytes.
    assert!(per_msg.slice_refs > 0, "chunking must take zero-copy slices");
    assert!(
        per_msg.bytes_copied <= 2 * LARGE as u64,
        "one extra large message may copy its bytes at most twice \
         (boundary copy-in + reassembly), got {per_msg}"
    );
}

/// Multirail splits are zero-copy: driving the balanced strategy across
/// both xeon_pair rails must grow the share count, not the memcpy count,
/// relative to the payload volume.
#[test]
fn multirail_split_uses_shared_slices() {
    let fp = Scenario::new(42, FaultSpec::NONE, Workload::Multirail, false).run_clean();
    assert!(
        fp.copy.slice_refs > 0,
        "multirail chunking produced no zero-copy shares: {}",
        fp.copy
    );
    // Every payload byte may be memcpy'd at most twice end-to-end
    // (copy-in at the MPI boundary, reassembly at the receiver), no
    // matter how many rail-chunks the strategy produced.
    assert!(
        fp.copy.memcpy_calls < fp.copy.slice_refs + fp.copy.allocations,
        "copies outnumber shares on the multirail path: {}",
        fp.copy
    );
}

/// Copy accounting is part of the replay identity: the same seed must
/// reproduce bit-identical CopyMeter counters — with and without an
/// injected fault schedule (retransmissions included).
#[test]
fn copy_counts_replay_bit_identical() {
    for seed in [7u64, 19, 23] {
        for workload in [Workload::SendRecv, Workload::AnySource] {
            // Fault-free control runs.
            let clean = Scenario::new(seed, FaultSpec::NONE, workload, false);
            let (a, b) = (clean.run_clean(), clean.run_clean());
            assert_eq!(
                a.copy, b.copy,
                "clean replay diverged (seed {seed}, {workload:?})"
            );

            // Fault-injected runs: retransmissions are refcount shares,
            // so even a lossy schedule replays to identical counters.
            let faulty = Scenario::new(seed, FaultSpec::drop_heavy(), workload, false);
            let (fa, fb) = (faulty.run(), faulty.run());
            assert_eq!(
                fa.copy, fb.copy,
                "faulty replay diverged (seed {seed}, {workload:?})"
            );
            assert!(
                fa.total_retries() > 0,
                "drop-heavy schedule triggered no retransmissions (seed {seed})"
            );
        }
    }
}
