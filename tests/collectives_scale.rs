//! Collective correctness at degenerate, non-power-of-two, and large rank
//! counts, cross-checking the hierarchical / log-round algorithms against
//! the flat ones, plus the O(active-flows) peer-state footprint claim.
//!
//! Byte-exactness note: the hierarchical allreduce sums in a different
//! order than the flat one, so contributions are integer-valued f64s —
//! addition is exact and every order produces identical bytes.

use bytes::Bytes;
use mpich2_nmad_repro::mpi_ch3::collectives;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::Src;
use mpich2_nmad_repro::simnet::{Cluster, NicModel, Placement, SimDuration};

/// Deterministic block payload from `src` to `dst` (ragged sizes, including
/// empty blocks).
fn block(src: usize, dst: usize, p: usize) -> Bytes {
    let len = (src * 13 + dst * 7) % 23; // 0..=22 bytes, some empty
    let _ = p;
    Bytes::from(
        (0..len)
            .map(|i| ((src * 31 + dst * 17 + i * 3) % 251) as u8)
            .collect::<Vec<u8>>(),
    )
}

fn cluster_for(nranks: usize) -> (Cluster, Placement) {
    // Enough 16-core nodes to host the job; block placement so nodes hold
    // full groups of co-located ranks (the hierarchical algorithms' target
    // shape).
    let nodes = nranks.div_ceil(16).max(2);
    let cluster = Cluster::new(nodes, 16, vec![NicModel::connectx_ib()]);
    let placement = Placement::block(nranks, &cluster);
    (cluster, placement)
}

/// P ∈ {1, 3, 6}: every algorithm variant must agree byte-for-byte on the
/// same inputs, including the degenerate single-rank and odd sizes where
/// the non-power-of-two folds and empty node groups are exercised.
#[test]
fn all_variants_agree_at_degenerate_sizes() {
    for p in [1usize, 3, 6] {
        let (cluster, placement) = cluster_for(p);
        let stack = StackConfig::mpich2_nmad(false);
        let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            collectives::barrier(mpi);
            // bcast, every root position.
            for root in 0..n {
                let payload: Vec<u8> = (0..64).map(|i| ((root * 7 + i) % 251) as u8).collect();
                let data = (me == root).then(|| Bytes::from(payload.clone()));
                let data2 = (me == root).then(|| Bytes::from(payload.clone()));
                let flat = collectives::bcast(mpi, root, data);
                let hier = collectives::bcast_hier(mpi, root, data2);
                assert_eq!(flat, hier, "bcast flat≠hier at P={n} root={root}");
                assert_eq!(&flat[..], &payload[..]);
            }
            // allreduce with integer-valued contributions: exact in every
            // summation order.
            let contrib: Vec<f64> = (0..5).map(|i| (me * 3 + i) as f64).collect();
            let flat = collectives::allreduce_sum(mpi, &contrib);
            let hier = collectives::allreduce_sum_hier(mpi, &contrib);
            assert_eq!(
                collectives::f64s_to_bytes(&flat),
                collectives::f64s_to_bytes(&hier),
                "allreduce flat≠hier at P={n}"
            );
            let expected: Vec<f64> = (0..5)
                .map(|i| (0..n).map(|r| (r * 3 + i) as f64).sum())
                .collect();
            assert_eq!(flat, expected);
            // alltoallv (ragged, with empty blocks): pairwise vs bruck vs
            // windowed.
            let mk = |_: usize| (0..n).map(|d| block(me, d, n)).collect::<Vec<Bytes>>();
            let flat = collectives::alltoallv(mpi, mk(0));
            let bruck = collectives::alltoallv_bruck(mpi, mk(1));
            let windowed = collectives::alltoallv_windowed(mpi, mk(2), 2);
            for s in 0..n {
                let want = block(s, me, n);
                assert_eq!(flat[s], want, "alltoallv flat wrong at P={n} src={s}");
                assert_eq!(bruck[s], want, "alltoallv bruck wrong at P={n} src={s}");
                assert_eq!(windowed[s], want, "alltoallv windowed wrong at P={n} src={s}");
            }
            // equal-size alltoall: pairwise vs bruck.
            let blocks: Vec<Bytes> = (0..n)
                .map(|d| Bytes::from(vec![(me * n + d) as u8; 16]))
                .collect();
            let flat = collectives::alltoall(mpi, blocks.clone());
            let bruck = collectives::alltoall_bruck(mpi, blocks);
            assert_eq!(flat, bruck, "alltoall flat≠bruck at P={n}");
            // The hierarchical barrier's degenerate paths: single-node
            // groups (no dissemination phase) and P=1 (early return).
            collectives::barrier_hier(mpi);
            collectives::barrier(mpi);
            true
        });
        assert!(oks.into_iter().all(|b| b), "P={p} job failed");
    }
}

/// P = 1000 (non-power-of-two, multi-node): barrier, bcast and allreduce
/// cross-checked flat vs hierarchical; both are log-round, so this stays
/// debug-build fast.
#[test]
fn hier_matches_flat_at_p1000() {
    let p = 1000usize;
    let (cluster, placement) = cluster_for(p);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        collectives::barrier(mpi);
        let root = 777; // non-leader, non-zero root
        let payload: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let flat = collectives::bcast(mpi, root, (me == root).then(|| Bytes::from(payload.clone())));
        let hier =
            collectives::bcast_hier(mpi, root, (me == root).then(|| Bytes::from(payload.clone())));
        assert_eq!(flat, hier, "bcast flat≠hier at P={n}");
        let contrib = [me as f64, (me * 2) as f64, 1.0];
        let flat = collectives::allreduce_sum(mpi, &contrib);
        let hier = collectives::allreduce_sum_hier(mpi, &contrib);
        assert_eq!(flat, hier, "allreduce flat≠hier at P={n}");
        let s: f64 = (0..n).map(|r| r as f64).sum();
        assert_eq!(flat, vec![s, 2.0 * s, n as f64]);
        // Hierarchical barrier synchronizes: stagger entry by rank, record
        // (enter, exit) sim times; no rank may leave before the last one
        // arrives.
        mpi.compute(SimDuration::nanos((me as u64) * 100));
        let enter = mpi.now();
        collectives::barrier_hier(mpi);
        let exit = mpi.now();
        (true, enter, exit)
    });
    let latest_enter = oks.iter().map(|(_, e, _)| *e).max().unwrap();
    let earliest_exit = oks.iter().map(|(_, _, x)| *x).min().unwrap();
    assert!(
        earliest_exit >= latest_enter,
        "barrier_hier released a rank at {earliest_exit:?} before the last \
         rank entered at {latest_enter:?}"
    );
    assert!(oks.into_iter().all(|(b, _, _)| b));
}

/// P = 1000 alltoallv via Bruck, validated against the analytically known
/// result (the flat pairwise exchange would be ~10⁶ messages — the point
/// of the log-round algorithm is to never send them).
#[test]
fn bruck_alltoallv_validates_at_p1000() {
    let p = 1000usize;
    let (cluster, placement) = cluster_for(p);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        let blocks: Vec<Bytes> = (0..n).map(|d| block(me, d, n)).collect();
        let got = collectives::alltoallv_bruck(mpi, blocks);
        for (s, g) in got.iter().enumerate() {
            assert_eq!(*g, block(s, me, n), "bruck wrong at src={s} dst={me}");
        }
        true
    });
    assert!(oks.into_iter().all(|b| b));
}

/// The O(active-flows) claim, measured: in a 1024-rank job where only the
/// first and last rank ever communicate, every other rank's NewMadeleine
/// core holds zero per-peer entries, and the two active ranks hold O(1).
#[test]
fn idle_ranks_allocate_no_peer_state() {
    let p = 1024usize;
    let (cluster, placement) = cluster_for(p);
    let stack = StackConfig::mpich2_nmad(false);
    let (outcome, _) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        if me == 0 {
            let r = mpi.irecv(Src::Rank(n - 1), 7);
            let s = mpi.isend(n - 1, 7, &[1u8; 100]);
            let (d, _) = mpi.wait_data(r);
            assert_eq!(d.unwrap().len(), 100);
            mpi.wait(s);
        } else if me == n - 1 {
            let r = mpi.irecv(Src::Rank(0), 7);
            let s = mpi.isend(0, 7, &[2u8; 100]);
            let (d, _) = mpi.wait_data(r);
            assert_eq!(d.unwrap().len(), 100);
            mpi.wait(s);
        }
        true
    });
    assert_eq!(outcome.nm_stats.len(), p);
    for (r, s) in outcome.nm_stats.iter().enumerate() {
        if r == 0 || r == p - 1 {
            assert!(
                s.peer_entries > 0 && s.peer_entries <= 16,
                "active rank {r} should hold O(1) peer entries, got {}",
                s.peer_entries
            );
        } else {
            assert_eq!(
                s.peer_entries, 0,
                "idle rank {r} allocated per-peer state"
            );
        }
    }
}
