//! Scale smoke: a four-figure-rank allreduce + barrier sweep with full
//! observability armed — span recording on and the protocol-conformance
//! checker replaying every recorded event through the rendezvous table
//! (violations assert inside `run_mpi`).
//!
//! The CI `scale-smoke` job runs this in release at 4096 ranks under a
//! wall-clock budget; the local release default stays 1024 and debug
//! builds default to 256 ranks so the tier-1 suite stays fast.
//! `SCALE_SMOKE_RANKS` overrides either way.

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::obs::ObsConfig;
use mpich2_nmad_repro::simnet::{Cluster, NicModel, Placement};

#[test]
fn allreduce_barrier_sweep_with_invariants_armed() {
    let p: usize = std::env::var("SCALE_SMOKE_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 256 } else { 1024 });
    let nodes = p.div_ceil(16).max(2);
    let cluster = Cluster::new(nodes, 16, vec![NicModel::connectx_ib()]);
    let placement = Placement::block(p, &cluster);
    let stack = StackConfig::mpich2_nmad(false).with_obs(ObsConfig::full());
    let (outcome, sums) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        mpi.barrier();
        // Three allreduce rounds (integer-valued, so exact in any order),
        // separated by barriers — the sweep shape the CI budget covers.
        let mut acc = 0.0f64;
        for round in 0..3u64 {
            let v = mpi.allreduce_sum(&[(me as u64 + round) as f64]);
            acc += v[0];
            mpi.barrier();
        }
        let n = n as f64;
        let expected: f64 = (0..3).map(|r| n * (n - 1.0) / 2.0 + n * r as f64).sum();
        assert_eq!(acc, expected, "allreduce sum wrong on rank {me}");
        acc
    });
    assert_eq!(sums.len(), p);
    // Span recording was actually armed (conformance violations would have
    // asserted inside run_mpi already).
    assert!(outcome.obs.is_some(), "observability report missing");
    assert!(outcome.sim.events > 0);
}
