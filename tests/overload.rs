//! Eager-flood overload tests: credit-based flow control under fire.
//!
//! Eight senders (one per node) flood a single receiver with a seeded,
//! skewed [`OverloadPlan`] burst schedule while the receiver drains
//! slowly. With flow control armed the receiver's unexpected eager bytes
//! must stay under the configured cap — the sender pools degrade the
//! overflow to the rendezvous path — and the whole run must replay
//! bit-identically from its seed, flow counters included. The same flood
//! without flow control must blow past the cap, proving the bound comes
//! from the credit layer and not from the workload being too gentle.
//!
//! CI's overload-seed matrix sets `SIM_SEED_BASE` to shift every seed
//! here onto a fresh range, so each job proves the invariants on burst
//! schedules no other job saw.

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, FlowTotals, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::FlowConfig;
use mpich2_nmad_repro::sim_harness::byte;
use mpich2_nmad_repro::simnet::{Cluster, OverloadPlan, Placement, SimDuration};

/// Flooding senders (ranks 1..=SENDERS; rank 0 receives).
const SENDERS: usize = 8;
const MSGS_PER_SENDER: usize = 40;
/// Payload range: all-eager (below the 16 KiB threshold), floor high
/// enough that even a minimum-length flood pushes the receiver past the
/// high-water mark (8 senders × 2 credits × 4 KiB > cap/2).
const LEN_RANGE: (usize, usize) = (4 * 1024, 8 * 1024);
const MEAN_GAP: SimDuration = SimDuration::micros(2);
const CREDITS: u32 = 2;
/// The hard ceiling: peers × eager_credits × max payload length.
const CAP: usize = SENDERS * CREDITS as usize * LEN_RANGE.1;
const TAG: u32 = 7;

fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Per-message payload seed — mixes the run seed with sender and index so
/// every payload in the flood is distinct.
fn flood_seed(seed: u64, sender: usize, idx: usize) -> u64 {
    seed ^ ((sender as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ ((idx as u64 + 1).wrapping_mul(6364136223846793005))
}

fn flood_payload(seed: u64, sender: usize, idx: usize, len: usize) -> Vec<u8> {
    let ms = flood_seed(seed, sender, idx);
    let mut p: Vec<u8> = (0..len).map(|i| byte(ms, i)).collect();
    // First 8 bytes carry (sender, idx) so ANY_SOURCE receivers can check
    // per-sender order independently of matching.
    p[..8].copy_from_slice(&(((sender as u64) << 32) | idx as u64).to_le_bytes());
    p
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0100_0000_01b3);
    }
}

/// Run the flood: senders follow the plan's burst schedule, the receiver
/// idles 500µs (letting the backlog build) and then drains slowly. Every
/// payload byte is checked in the receiver; returns the receiver's FNV
/// hash per rank (senders return 0).
fn run_flood(seed: u64, flow: Option<FlowConfig>, any_source: bool) -> (RunOutcome, u64) {
    let cluster = Cluster::grid5000_opteron();
    let nranks = 1 + SENDERS;
    let placement = Placement::one_per_node(nranks, &cluster);
    let mut stack = StackConfig::mpich2_nmad(false).with_fabric_seed(seed);
    if let Some(f) = flow {
        stack = stack.with_flow(f);
    }
    let plan = OverloadPlan::new(seed, SENDERS, MSGS_PER_SENDER, LEN_RANGE, MEAN_GAP);
    let (outcome, hashes) = run_mpi_collect(&cluster, &placement, &stack, nranks, move |mpi| {
        flood_rank(mpi, &plan, seed, any_source)
    });
    (outcome, hashes[0])
}

fn flood_rank(mpi: &MpiHandle, plan: &OverloadPlan, seed: u64, any_source: bool) -> u64 {
    let me = mpi.rank();
    if me == 0 {
        // Let the flood land first: with flow armed the sender pools
        // empty and the tail degrades to rendezvous; without it the
        // whole flood piles up unexpected.
        mpi.compute(SimDuration::micros(500));
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        if any_source {
            let mut next = [0usize; SENDERS + 1];
            for _ in 0..plan.total_msgs() {
                let (data, st) = mpi.recv(Src::Any, TAG);
                let s = st.source;
                assert!((1..=SENDERS).contains(&s), "bogus source {s}");
                let hdr = u64::from_le_bytes(data[..8].try_into().unwrap());
                let (hs, hi) = ((hdr >> 32) as usize, (hdr & 0xffff_ffff) as usize);
                assert_eq!(hs, s, "header sender disagrees with matched source");
                assert_eq!(hi, next[s], "per-sender order violated from rank {s}");
                let want = flood_payload(seed, s, hi, plan.schedule(s - 1)[hi].1);
                assert_eq!(&data[..], &want[..], "payload corrupt: rank {s} msg {hi}");
                next[s] += 1;
                fnv(&mut h, &data);
                mpi.compute(SimDuration::micros(5));
            }
            for (s, &n) in next.iter().enumerate().skip(1) {
                assert_eq!(n, MSGS_PER_SENDER, "rank {s} short-delivered");
            }
        } else {
            // Round-robin drain, one blocking receive at a time: the
            // receiver stays the bottleneck, so flow control (not luck)
            // is what bounds the backlog. Per-sender receives match in
            // posted order — receive i must carry message i's bytes.
            for idx in 0..MSGS_PER_SENDER {
                for s in 1..=SENDERS {
                    let (data, st) = mpi.recv(Src::Rank(s), TAG);
                    assert_eq!(st.source, s);
                    let want = flood_payload(seed, s, idx, plan.schedule(s - 1)[idx].1);
                    assert_eq!(
                        data.len(),
                        want.len(),
                        "length mismatch: rank {s} msg {idx}"
                    );
                    assert_eq!(&data[..], &want[..], "payload corrupt: rank {s} msg {idx}");
                    fnv(&mut h, &data);
                    mpi.compute(SimDuration::micros(5));
                }
            }
        }
        h
    } else {
        for (idx, &(gap, len)) in plan.schedule(me - 1).iter().enumerate() {
            mpi.compute(gap);
            mpi.send(0, TAG, &flood_payload(seed, me, idx, len));
        }
        0
    }
}

#[test]
fn flood_respects_cap_and_degrades_to_rendezvous() {
    let seed = seed_base() + 40;
    let (outcome, _) = run_flood(seed, Some(FlowConfig::bounded(CREDITS, CAP)), false);
    let ft = outcome.flow_totals();
    assert!(
        ft.peak_unex_bytes <= CAP as u64,
        "flow armed but peak unexpected backlog {}B exceeded the {}B cap",
        ft.peak_unex_bytes,
        CAP
    );
    assert!(ft.eager_admitted > 0, "no eager send consumed a credit");
    assert!(
        ft.credit_stalls > 0 && ft.fallback_sends > 0,
        "a {MSGS_PER_SENDER}-deep flood against {CREDITS} credits must \
         exhaust pools and degrade to rendezvous (stalls {}, fallbacks {})",
        ft.credit_stalls,
        ft.fallback_sends
    );
    assert!(
        ft.credits_withheld > 0,
        "the idle receiver must cross the high-water mark and withhold \
         credit returns"
    );
    assert!(
        ft.credits_returned > 0,
        "draining the backlog must eventually return credits"
    );
}

#[test]
fn unarmed_flood_blows_past_the_cap() {
    // Control: the identical flood without flow control must exceed the
    // cap — the bound above comes from the credit layer, not from the
    // workload being too gentle to matter.
    let seed = seed_base() + 40;
    let (outcome, _) = run_flood(seed, None, false);
    let ft = outcome.flow_totals();
    assert!(
        ft.peak_unex_bytes > CAP as u64,
        "unarmed flood peaked at {}B, under the {}B cap — the armed test \
         is not proving anything",
        ft.peak_unex_bytes,
        CAP
    );
    // Off means off: no credit counter may move.
    assert_eq!(
        (
            ft.eager_admitted,
            ft.credit_stalls,
            ft.fallback_sends,
            ft.credits_returned,
            ft.credits_withheld
        ),
        (0, 0, 0, 0, 0),
        "flow disabled but credit counters moved"
    );
}

#[test]
fn same_seed_replays_bit_identical() {
    for s in 0..2u64 {
        let seed = seed_base() + 60 + s;
        let flow = FlowConfig::bounded(CREDITS, CAP);
        let (a, ha) = run_flood(seed, Some(flow), false);
        let (b, hb) = run_flood(seed, Some(flow), false);
        assert_eq!(ha, hb, "seed {seed}: payload hash diverged");
        assert_eq!(
            a.sim.final_time, b.sim.final_time,
            "seed {seed}: final time diverged"
        );
        assert_eq!(a.sim.events, b.sim.events, "seed {seed}: event count diverged");
        assert_eq!(a.nm_stats, b.nm_stats, "seed {seed}: NM counters diverged");
        assert_eq!(
            a.rail_counters, b.rail_counters,
            "seed {seed}: rail traffic diverged"
        );
        assert_eq!(a.copy, b.copy, "seed {seed}: copy accounting diverged");
        assert_eq!(
            a.flow_totals(),
            b.flow_totals(),
            "seed {seed}: flow totals diverged"
        );
        assert!(
            a.flow_totals().fallback_sends > 0,
            "seed {seed}: replay pair never exercised the fallback path"
        );
    }
}

#[test]
fn any_source_survives_the_flood() {
    // MPI_ANY_SOURCE under overload: matching through the any-source list
    // machinery while eager traffic stalls, degrades and recovers must
    // still deliver exactly-once with per-sender FIFO order (asserted
    // in-program via the payload headers).
    let seed = seed_base() + 80;
    let (outcome, _) = run_flood(seed, Some(FlowConfig::bounded(CREDITS, CAP)), true);
    let ft = outcome.flow_totals();
    assert!(ft.peak_unex_bytes <= CAP as u64, "cap held under ANY_SOURCE");
    assert!(
        ft.fallback_sends > 0,
        "flood too gentle: ANY_SOURCE never saw the degraded path"
    );
}

#[test]
fn ample_credits_match_unarmed_baseline() {
    // Happy path: flow armed but pools deep enough that no send ever
    // stalls. A paced, pre-posted exchange must behave like the unarmed
    // baseline — same bytes, no fallbacks, completion time within noise
    // (credit-return frames share the wire, so exact equality is not
    // expected).
    let seed = seed_base() + 90;
    let run = |flow: Option<FlowConfig>| -> (RunOutcome, u64) {
        let cluster = Cluster::grid5000_opteron();
        let nranks = 1 + SENDERS;
        let placement = Placement::one_per_node(nranks, &cluster);
        let mut stack = StackConfig::mpich2_nmad(false).with_fabric_seed(seed);
        if let Some(f) = flow {
            stack = stack.with_flow(f);
        }
        let (outcome, hashes) = run_mpi_collect(&cluster, &placement, &stack, nranks, move |mpi| {
            let me = mpi.rank();
            const PACED_MSGS: usize = 12;
            const PACED_LEN: usize = 2048;
            if me == 0 {
                let mut reqs = Vec::new();
                for idx in 0..PACED_MSGS {
                    for s in 1..=SENDERS {
                        reqs.push((s, idx, mpi.irecv(Src::Rank(s), TAG)));
                    }
                }
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for (s, idx, r) in reqs {
                    let (data, _) = mpi.wait_data(r);
                    let data = data.expect("recv payload");
                    let want = flood_payload(seed, s, idx, PACED_LEN);
                    assert_eq!(&data[..], &want[..], "rank {s} msg {idx} corrupt");
                    fnv(&mut h, &data);
                }
                h
            } else {
                for idx in 0..PACED_MSGS {
                    mpi.send(0, TAG, &flood_payload(seed, me, idx, PACED_LEN));
                    mpi.compute(SimDuration::micros(10));
                }
                0
            }
        });
        (outcome, hashes[0])
    };
    let (armed, ha) = run(Some(FlowConfig::bounded(32, 8 * 1024 * 1024)));
    let (unarmed, hu) = run(None);
    let ft = armed.flow_totals();
    assert_eq!(ft.credit_stalls, 0, "deep pools must never stall");
    assert_eq!(ft.fallback_sends, 0, "paced flow must stay all-eager");
    assert!(ft.eager_admitted > 0);
    assert_eq!(ft.credits_withheld, 0, "pre-posted receiver never throttles");
    assert_eq!(ha, hu, "same workload, same bytes");
    let (ta, tu) = (
        armed.sim.final_time.as_nanos() as f64,
        unarmed.sim.final_time.as_nanos() as f64,
    );
    let ratio = (ta - tu).abs() / tu;
    assert!(
        ratio < 0.05,
        "armed-but-idle flow cost {:.2}% vs the unarmed baseline \
         (armed {ta}ns, unarmed {tu}ns)",
        ratio * 100.0
    );
    assert_eq!(
        FlowTotals::default(),
        unarmed.flow_totals(),
        "unarmed baseline moved a flow counter"
    );
}
