//! Bounded exhaustive exploration of the rendezvous protocol table.
//!
//! Runs the standard model suite — every protocol dialect the repo
//! implements (core pipelined with and without the credit fallback, CH3
//! buffered, CH3 ACK-throttled) plus retry-mode configurations with the
//! full fault menu (drops, duplicates of every frame class, spurious
//! timers) over 2–3 ranks and 1–2 in-flight messages — and asserts:
//!
//! * **Soundness**: [`nmad::protocol::validate_table`] finds no
//!   ambiguity (two rows, or a row and an ignore, firing on the same
//!   (state, event, ctx)) and no guard-unsatisfiable row.
//! * **No violations**: every reachable interleaving completes (all
//!   sends and receives finish, no frame stranded), no event arrives in
//!   a state with no transition other than a declared ignore, and the
//!   one `defensive` ignore never fires.
//! * **No dead table entries**: the union of the suite's coverage
//!   reaches every table row and every non-defensive ignore.
//! * **Scale**: the suite explores at least 10k distinct interleaving
//!   edges — the acceptance floor for calling the exploration
//!   exhaustive rather than anecdotal.
//!
//! Per-configuration state/edge counts are printed for EXPERIMENTS.md
//! E18 (`cargo test --test model_explorer -- --nocapture`).

use mpich2_nmad_repro::nmad::protocol::{self, explore};

#[test]
fn standard_suite_covers_table_without_violations() {
    let suite = explore::standard_suite();
    let (per_cfg, merged) = explore::explore_suite(&suite)
        .unwrap_or_else(|e| panic!("model explorer found a violation: {e}"));
    println!("model explorer — standard suite:");
    for s in &per_cfg {
        println!(
            "  {:<24} states={:>8} edges={:>9} terminals={:>7}",
            s.name, s.states, s.edges, s.terminals
        );
    }
    println!(
        "  {:<24} states={:>8} edges={:>9} terminals={:>7}",
        "TOTAL", merged.states, merged.edges, merged.terminals
    );
    assert!(
        merged.edges >= 10_000,
        "acceptance floor: >= 10k distinct interleaving edges, explored {}",
        merged.edges
    );
    assert_eq!(merged.unreached_rows(), Vec::<&str>::new());
    assert_eq!(merged.unreached_ignores(), Vec::<&str>::new());
    // Every configuration must individually reach a terminal (eventual
    // completion is a per-config claim, not just a union one).
    for s in &per_cfg {
        assert!(s.terminals > 0, "{}: no terminal state reached", s.name);
    }
}

#[test]
fn table_is_deterministic_and_satisfiable() {
    assert_eq!(protocol::validate_table(), Vec::<String>::new());
}

/// The explorer is itself a checker — prove it rejects a model that
/// cannot complete (faults armed without the retry machinery would
/// strand frames, which the config asserts against up front).
#[test]
#[should_panic(expected = "faults without retry")]
fn explorer_rejects_unrecoverable_fault_config() {
    let cfg = explore::ModelCfg {
        max_drops: 1,
        ..explore::ModelCfg::clean(
            "bad",
            vec![explore::MsgCfg {
                src: 0,
                dst: 1,
                chunks: 2,
            }],
        )
    };
    let _ = explore::explore(&cfg);
}
