//! Trace-driven protocol invariants: structural properties of the
//! message-lifecycle span stream, checked over a multi-seed sweep with
//! faults armed and under an overload flood with flow control armed.
//!
//! Every run here asserts four invariant classes on the recorded spans:
//!
//! 1. **Rendezvous ordering** — per message, the first occurrences obey
//!    RTS tx ≤ RTS rx ≤ CTS tx ≤ CTS rx ≤ first DATA tx ≤ first DATA rx,
//!    and (when the retry layer sends FINs) FIN tx/rx follow the data.
//! 2. **Eager bound** — no message that went out on the eager path
//!    exceeds the configured eager threshold.
//! 3. **Credit conservation** — a sender's per-peer credit balance,
//!    reconstructed from debit/refill events, never leaves
//!    `[0, eager_credits]`.
//! 4. **Lifecycle completeness** — every posted span reaches `completed`
//!    on its side (the job finished, so nothing may be left dangling).
//!
//! Plus the acceptance bound on the exporter: the per-phase breakdown
//! must attribute ≥ 95% of end-to-end message latency.
//!
//! CI's seed matrix sets `SIM_SEED_BASE` to shift every seed onto a
//! fresh range, so each job proves the invariants on schedules no other
//! job saw.

use std::collections::BTreeMap;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::{FlowConfig, NmConfig};
use mpich2_nmad_repro::nmad::protocol::conformance;
use mpich2_nmad_repro::obs::{
    EngineEvent, MsgKey, ObsConfig, Phase, Report, RetryKind, Scope, Side,
};
use mpich2_nmad_repro::sim_harness::{byte, Scenario, Workload};
use mpich2_nmad_repro::simnet::{Cluster, FaultSpec, OverloadPlan, Placement, SimDuration};

fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Group message-scoped events per key, sorted by time (stable within a
/// tie: append order, which per rank is causal order).
fn spans(report: &Report) -> BTreeMap<MsgKey, Vec<(u64, Phase)>> {
    let mut per_msg: BTreeMap<MsgKey, Vec<(u64, Phase)>> = BTreeMap::new();
    for e in &report.events {
        if let Scope::Msg { key, phase } = e.scope {
            per_msg.entry(key).or_default().push((e.t_ns, phase));
        }
    }
    for evs in per_msg.values_mut() {
        evs.sort_by_key(|&(t, _)| t);
    }
    per_msg
}

/// Time of the first event matching `pred`, if any.
fn first(evs: &[(u64, Phase)], pred: impl Fn(&Phase) -> bool) -> Option<u64> {
    evs.iter().find(|(_, p)| pred(p)).map(|&(t, _)| t)
}

fn check_rendezvous_ordering(key: &MsgKey, evs: &[(u64, Phase)]) {
    let rts_tx = first(evs, |p| matches!(p, Phase::RtsTx { .. }));
    let Some(rts_tx) = rts_tx else { return };
    let ctx = |what: &str| format!("{what} on rendezvous span {key:?}: {evs:?}");
    // A retransmitted RTS may never have been answered, so everything
    // downstream is conditional — but whatever exists must be ordered.
    let rts_rx = first(evs, |p| matches!(p, Phase::RtsRx));
    let cts_tx = first(evs, |p| matches!(p, Phase::CtsTx { .. }));
    let cts_rx = first(evs, |p| matches!(p, Phase::CtsRx));
    let data_tx = first(evs, |p| matches!(p, Phase::DataChunkTx { .. }));
    let data_rx = first(evs, |p| matches!(p, Phase::DataChunkRx { .. }));
    let fin_tx = first(evs, |p| matches!(p, Phase::FinTx));
    let fin_rx = first(evs, |p| matches!(p, Phase::FinRx));
    let chain = [
        ("rts_tx", Some(rts_tx)),
        ("rts_rx", rts_rx),
        ("cts_tx", cts_tx),
        ("cts_rx", cts_rx),
        ("first chunk_tx", data_tx),
        ("first chunk_rx", data_rx),
    ];
    let mut prev: Option<(&str, u64)> = None;
    for (name, t) in chain {
        if let Some(t) = t {
            if let Some((pname, pt)) = prev {
                assert!(pt <= t, "{}", ctx(&format!("{pname} after {name}")));
            }
            prev = Some((name, t));
        }
    }
    if let Some(ft) = fin_tx {
        let drx = data_rx.expect("FIN sent but no data received");
        assert!(drx <= ft, "{}", ctx("fin_tx before first chunk_rx"));
        if let Some(fr) = fin_rx {
            assert!(ft <= fr, "{}", ctx("fin_rx before fin_tx"));
        }
    }
}

fn check_eager_bound(key: &MsgKey, evs: &[(u64, Phase)], eager_threshold: u64) {
    if first(evs, |p| matches!(p, Phase::EagerTx { .. })).is_none() {
        return;
    }
    for (_, p) in evs {
        if let Phase::SendPosted { len } = p {
            assert!(
                *len <= eager_threshold,
                "span {key:?} took the eager path with {len}B payload, over \
                 the {eager_threshold}B threshold"
            );
        }
    }
}

fn check_lifecycle_completeness(key: &MsgKey, evs: &[(u64, Phase)]) {
    for (side, posted, done) in [
        (
            "send",
            first(evs, |p| matches!(p, Phase::SendPosted { .. })),
            first(evs, |p| matches!(p, Phase::Completed { side: Side::Send })),
        ),
        (
            "recv",
            first(evs, |p| matches!(p, Phase::RecvPosted)),
            first(evs, |p| matches!(p, Phase::Completed { side: Side::Recv })),
        ),
    ] {
        if let Some(tp) = posted {
            let td = done.unwrap_or_else(|| {
                panic!("span {key:?} was {side}-posted but never completed: {evs:?}")
            });
            assert!(tp <= td, "span {key:?} completed before it was posted");
        }
    }
}

/// Reconstruct every sender's per-peer credit balance from the engine
/// event stream and assert it stays within `[0, initial]`. Events appear
/// in append order, which per rank is causal order.
fn check_credit_balance(report: &Report, initial: u32) {
    let mut balance: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    let mut moves = 0u64;
    for e in &report.events {
        let Scope::Engine { ev } = e.scope else { continue };
        match ev {
            EngineEvent::CreditDebit { peer } => {
                let b = balance.entry((e.rank, peer)).or_insert(initial as i64);
                *b -= 1;
                moves += 1;
                assert!(
                    *b >= 0,
                    "rank {} overdrew its credit pool toward peer {peer}",
                    e.rank
                );
            }
            EngineEvent::CreditRefill { peer, credits } => {
                let b = balance.entry((e.rank, peer)).or_insert(initial as i64);
                *b += credits as i64;
                moves += 1;
                assert!(
                    *b <= initial as i64,
                    "rank {} refilled past the initial pool of {initial} \
                     toward peer {peer} (balance {b})",
                    e.rank
                );
            }
            _ => {}
        }
    }
    assert!(moves > 0, "flow armed but no credit events recorded");
}

/// All per-span invariants plus the breakdown coverage bound.
fn check_report(report: &Report, eager_threshold: u64) {
    assert!(!report.events.is_empty(), "traced run recorded nothing");
    let per_msg = spans(report);
    assert!(!per_msg.is_empty(), "no message spans recorded");
    for (key, evs) in &per_msg {
        check_rendezvous_ordering(key, evs);
        check_eager_bound(key, evs, eager_threshold);
        check_lifecycle_completeness(key, evs);
    }
    let b = report.breakdown();
    assert!(
        b.coverage() >= 0.95,
        "phase breakdown attributes only {:.1}% of end-to-end latency",
        b.coverage() * 100.0
    );
}

/// Fault-armed multi-seed sweep: ≥ 8 seeds across every workload and
/// both progression modes, mixed fault schedule on each.
#[test]
fn invariants_hold_across_fault_seed_sweep() {
    let threshold = NmConfig::default().eager_threshold as u64;
    let workloads = [Workload::SendRecv, Workload::AnySource, Workload::Multirail];
    for i in 0..8u64 {
        let seed = seed_base() + 70 + i;
        let workload = workloads[(i % 3) as usize];
        let pioman = i % 2 == 0;
        let scenario = Scenario::new(seed, FaultSpec::mixed(), workload, pioman);
        let (_, report) = scenario.run_traced();
        check_report(&report, threshold);
        // The sweep must actually exercise the fault machinery: mixed
        // schedules retry at least somewhere across the sweep (checked
        // per-run where retries occurred).
        let retried = report
            .events
            .iter()
            .any(|e| matches!(e.scope, Scope::Msg { phase: Phase::Retry { .. }, .. }));
        let _ = retried; // presence varies per seed; the sum check is below
    }
}

/// At least one seed in the sweep range must provoke retries, otherwise
/// the fault-armed invariants above prove nothing about recovery paths.
#[test]
fn fault_sweep_exercises_retry_spans() {
    let mut retries = 0usize;
    for i in 0..3u64 {
        let scenario = Scenario::new(
            seed_base() + 70 + i,
            FaultSpec::mixed(),
            Workload::Multirail,
            false,
        );
        let (fp, report) = scenario.run_traced();
        retries += report
            .events
            .iter()
            .filter(|e| matches!(e.scope, Scope::Msg { phase: Phase::Retry { .. }, .. }))
            .count();
        assert_eq!(fp.total_retries(), {
            let spans_retries: u64 = report
                .events
                .iter()
                .filter(|e| {
                    matches!(e.scope, Scope::Msg { phase: Phase::Retry { .. }, .. })
                })
                .count() as u64;
            spans_retries
        });
    }
    assert!(retries > 0, "mixed faults never retried across 3 seeds");
}

/// Duplicate-RTS replay regression under a dup+reorder-heavy schedule:
/// replayed handshake wire events stay 1:1 with their announcing Retry
/// span events. Per rendezvous message, every `RtsTx` beyond the first
/// was announced by exactly one `Retry{Rts}`, and every `CtsTx` beyond
/// the first by exactly one `Retry{Cts}` (progress timer or
/// duplicate-RTS replay — the table's `timer/cts` and
/// `replay/cts-on-rts` rows). The whole stream must also pass the
/// post-hoc protocol-table conformance check (the run itself already
/// validates incrementally through the installed recorder hook).
#[test]
fn duplicate_rts_replays_stay_one_to_one_with_retry_spans() {
    let spec = FaultSpec {
        dup_pct: 0.3,
        delay_pct: 0.35,
        max_extra_delay: SimDuration::micros(250),
        drop_pct: 0.05,
        ..FaultSpec::NONE
    };
    let mut dup_envelopes = 0u64;
    let mut replayed = 0usize;
    for i in 0..4u64 {
        let seed = seed_base() + 230 + i;
        let workload = if i % 2 == 0 {
            Workload::SendRecv
        } else {
            Workload::Multirail
        };
        let (fp, report) = Scenario::new(seed, spec, workload, false).run_traced();
        dup_envelopes += fp
            .nm_stats
            .iter()
            .map(|s| s.dup_envelopes)
            .sum::<u64>();
        let violations = conformance::check_events(&report.events, true);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        for (key, evs) in spans(&report) {
            let count = |f: &dyn Fn(&Phase) -> bool| evs.iter().filter(|(_, p)| f(p)).count();
            let rts_tx = count(&|p| matches!(p, Phase::RtsTx { .. }));
            if rts_tx == 0 {
                continue; // eager path
            }
            let cts_tx = count(&|p| matches!(p, Phase::CtsTx { .. }));
            let retry_rts = count(&|p| matches!(p, Phase::Retry { kind: RetryKind::Rts }));
            let retry_cts = count(&|p| matches!(p, Phase::Retry { kind: RetryKind::Cts }));
            assert_eq!(
                rts_tx,
                1 + retry_rts,
                "{key:?} (seed {seed}): replayed RTS not 1:1 with Retry(Rts) spans"
            );
            assert_eq!(
                cts_tx,
                1 + retry_cts,
                "{key:?} (seed {seed}): replayed CTS not 1:1 with Retry(Cts) spans"
            );
            replayed += retry_rts + retry_cts;
        }
    }
    assert!(
        dup_envelopes > 0,
        "dup+reorder schedule never provoked a duplicate envelope"
    );
    assert!(
        replayed > 0,
        "dup+reorder schedule never replayed a handshake frame"
    );
}

// --- Overload-armed flood ------------------------------------------------

const SENDERS: usize = 4;
const MSGS_PER_SENDER: usize = 12;
const LEN_RANGE: (usize, usize) = (4 * 1024, 8 * 1024);
const CREDITS: u32 = 2;
const CAP: usize = SENDERS * CREDITS as usize * LEN_RANGE.1;
const TAG: u32 = 7;

fn flood_payload(seed: u64, sender: usize, idx: usize, len: usize) -> Vec<u8> {
    let ms = seed ^ ((sender as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ (idx as u64);
    (0..len).map(|i| byte(ms, i)).collect()
}

fn run_flood_traced(seed: u64) -> Report {
    let cluster = Cluster::grid5000_opteron();
    let nranks = 1 + SENDERS;
    let placement = Placement::one_per_node(nranks, &cluster);
    let stack = StackConfig::mpich2_nmad(false)
        .with_fabric_seed(seed)
        .with_flow(FlowConfig::bounded(CREDITS, CAP))
        .with_obs(ObsConfig::full());
    let plan = OverloadPlan::new(
        seed,
        SENDERS,
        MSGS_PER_SENDER,
        LEN_RANGE,
        SimDuration::micros(2),
    );
    let (outcome, _) = run_mpi_collect(&cluster, &placement, &stack, nranks, move |mpi| {
        flood_rank(mpi, &plan, seed)
    });
    let ft = outcome.flow_totals();
    assert!(
        ft.credit_stalls > 0,
        "flood too gentle: no credit stall, the overload invariants prove \
         nothing (stalls {}, fallbacks {})",
        ft.credit_stalls,
        ft.fallback_sends
    );
    outcome.obs.expect("obs armed")
}

fn flood_rank(mpi: &MpiHandle, plan: &OverloadPlan, seed: u64) {
    let me = mpi.rank();
    if me == 0 {
        // Idle first so the backlog builds, then drain slowly: the
        // receiver stays the bottleneck and the credit layer is what
        // bounds the flood.
        mpi.compute(SimDuration::micros(500));
        for idx in 0..MSGS_PER_SENDER {
            for s in 1..=SENDERS {
                let (data, st) = mpi.recv(Src::Rank(s), TAG);
                assert_eq!(st.source, s);
                let want = flood_payload(seed, s, idx, plan.schedule(s - 1)[idx].1);
                assert_eq!(&data[..], &want[..], "payload corrupt: rank {s} msg {idx}");
                mpi.compute(SimDuration::micros(5));
            }
        }
    } else {
        for (idx, &(gap, len)) in plan.schedule(me - 1).iter().enumerate() {
            mpi.compute(gap);
            mpi.send(0, TAG, &flood_payload(seed, me, idx, len));
        }
    }
}

/// Overload with flow control armed: all span invariants hold, the
/// reconstructed credit balance stays within the pool, and the stalls the
/// flow counters report appear as `credit_stall` span annotations.
#[test]
fn invariants_hold_under_overload_with_flow_armed() {
    let threshold = NmConfig::default().eager_threshold as u64;
    for i in 0..3u64 {
        let report = run_flood_traced(seed_base() + 90 + i);
        check_report(&report, threshold);
        check_credit_balance(&report, CREDITS);
        let stall_spans = report
            .events
            .iter()
            .filter(|e| matches!(e.scope, Scope::Msg { phase: Phase::CreditStall, .. }))
            .count();
        assert!(
            stall_spans > 0,
            "credit stalls occurred but no span carries the annotation"
        );
    }
}
