//! The paper's headline claims, asserted end-to-end (cheap versions of
//! the E1–E11 experiments; the bench binaries print the full figures).

use bench_harness::{
    fig2_handshake, fig4_bandwidth, fig4_latency, fig5, fig6_mx, fig6_shm, latency_breakdown,
    sending_time, RAIL_IB, RAIL_MX,
};
use mpich2_nmad_repro::mpi_ch3::stack::StackConfig;
use mpich2_nmad_repro::simnet::SimDuration;
use netpipe::NetpipeOptions;

fn quick_lat() -> NetpipeOptions {
    NetpipeOptions {
        sizes: vec![4, 512],
        iters_small: 10,
        ..Default::default()
    }
}

fn quick_bw() -> NetpipeOptions {
    NetpipeOptions {
        sizes: vec![64 * 1024, 4 << 20],
        iters_small: 3,
        iters_large: 2,
        ..Default::default()
    }
}

#[test]
fn e1_fig4a_latency_ordering_and_values() {
    let series = fig4_latency(&quick_lat());
    let lat = |i: usize| series[i].latency_at(4).unwrap();
    let (mva, omp, nmad, nmad_as) = (lat(0), lat(1), lat(2), lat(3));
    // Paper: 1.5, 1.6, 2.1, 2.4 µs.
    assert!((mva - 1.5).abs() < 0.15, "MVAPICH2 {mva}");
    assert!((omp - 1.6).abs() < 0.15, "Open MPI {omp}");
    assert!((nmad - 2.1).abs() < 0.15, "MPICH2-NMad {nmad}");
    assert!(
        (nmad_as - nmad - 0.3).abs() < 0.1,
        "ANY_SOURCE gap {}",
        nmad_as - nmad
    );
    // And the gap stays constant as size grows (§4.1.1).
    let gap_512 = series[3].latency_at(512).unwrap() - series[2].latency_at(512).unwrap();
    assert!((gap_512 - 0.3).abs() < 0.1, "AS gap at 512B {gap_512}");
}

#[test]
fn e2_fig4b_bandwidth_ordering() {
    let series = fig4_bandwidth(&quick_bw());
    let peak = |i: usize| series[i].bandwidth_at(4 << 20).unwrap();
    let (mva, omp, nmad) = (peak(0), peak(1), peak(2));
    // MVAPICH2 outperforms all; nmad beats Open MPI.
    assert!(mva > nmad, "MVAPICH2 {mva} !> nmad {nmad}");
    assert!(nmad > omp, "nmad {nmad} !> OpenMPI {omp}");
    // Medium sizes: nmad above Open MPI (the Fig. 4b crossover).
    let med_nmad = series[2].bandwidth_at(64 * 1024).unwrap();
    let med_omp = series[1].bandwidth_at(64 * 1024).unwrap();
    assert!(
        med_nmad > med_omp,
        "medium-size: nmad {med_nmad} !> OpenMPI {med_omp}"
    );
}

#[test]
fn e3_e4_fig5_multirail() {
    let lat = fig5(&quick_lat());
    // Small messages ride the fastest rail: multirail == IB-only latency.
    let ib = lat[1].latency_at(4).unwrap();
    let multi = lat[2].latency_at(4).unwrap();
    assert!((multi - ib).abs() < 0.05, "multi {multi} vs IB {ib}");
    // Large messages aggregate both rails.
    let bw = fig5(&quick_bw());
    let (mx, ib, multi) = (
        bw[0].bandwidth_at(4 << 20).unwrap(),
        bw[1].bandwidth_at(4 << 20).unwrap(),
        bw[2].bandwidth_at(4 << 20).unwrap(),
    );
    assert!(
        multi > 0.85 * (mx + ib),
        "aggregated {multi} vs sum {}",
        mx + ib
    );
}

#[test]
fn e5_fig6a_pioman_shm_overhead() {
    let series = fig6_shm(&quick_lat());
    let base = series[0].latency_at(4).unwrap();
    let piom = series[1].latency_at(4).unwrap();
    let omp = series[2].latency_at(4).unwrap();
    // Nemesis ~0.2-0.3µs; PIOMan adds ~0.45µs; Open MPI in between/above.
    assert!(base < 0.35, "Nemesis shm {base}");
    assert!(
        (piom - base - 0.45).abs() < 0.15,
        "PIOMan shm overhead {}",
        piom - base
    );
    assert!(omp > base, "Open MPI shm {omp} must exceed Nemesis {base}");
    // Constant overhead: same gap at 512 B.
    let gap512 = series[1].latency_at(512).unwrap() - series[0].latency_at(512).unwrap();
    assert!((gap512 - 0.45).abs() < 0.15, "gap at 512B {gap512}");
}

#[test]
fn e6_fig6b_pioman_mx_overhead_and_ordering() {
    let series = fig6_mx(&quick_lat());
    let pml = series[0].latency_at(4).unwrap();
    let btl = series[1].latency_at(4).unwrap();
    let nmad = series[2].latency_at(4).unwrap();
    let piom = series[3].latency_at(4).unwrap();
    // Fig. 6(b) ordering: nmad < PML < BTL < nmad+PIOMan.
    assert!(nmad < pml && pml < btl && btl < piom,
        "ordering violated: nmad {nmad}, pml {pml}, btl {btl}, piom {piom}");
    assert!((nmad - 2.4).abs() < 0.15, "nmad MX {nmad}");
    assert!((piom - nmad - 2.0).abs() < 0.4, "PIOMan MX overhead {}", piom - nmad);
}

#[test]
fn e7_fig7a_eager_overlap() {
    let compute = SimDuration::micros(20);
    let nmad = StackConfig::mpich2_nmad_rail(RAIL_MX, false);
    let piom = StackConfig::mpich2_nmad_rail(RAIL_MX, true);
    let reference = sending_time(&nmad, 16 * 1024, SimDuration::ZERO);
    let no_overlap = sending_time(&nmad, 16 * 1024, compute);
    let overlap = sending_time(&piom, 16 * 1024, compute);
    // sum(comm, compute) vs max(comm, compute).
    assert!(
        no_overlap > reference + 18.0,
        "no-PIOMan must serialize: {no_overlap} vs ref {reference}"
    );
    assert!(
        overlap < reference + 10.0,
        "PIOMan must overlap: {overlap} vs ref {reference}"
    );
}

#[test]
fn e8_fig7b_rendezvous_overlap() {
    let compute = SimDuration::micros(400);
    let nmad = StackConfig::mpich2_nmad_rail(RAIL_IB, false);
    let piom = StackConfig::mpich2_nmad_rail(RAIL_IB, true);
    for &bytes in &[256 * 1024usize, 1 << 20] {
        let reference = sending_time(&nmad, bytes, SimDuration::ZERO);
        let plain = sending_time(&nmad, bytes, compute);
        let over = sending_time(&piom, bytes, compute);
        // Without PIOMan: compute + comm (the handshake stalls).
        assert!(
            plain > 390.0 + reference * 0.9,
            "{bytes}B plain {plain} vs ref {reference}"
        );
        // With PIOMan: ~max(compute, comm).
        let max_expect = reference.max(400.0);
        assert!(
            over < max_expect + 40.0,
            "{bytes}B overlap {over} vs max {max_expect}"
        );
    }
}

#[test]
fn e10_fig2_nested_handshake_penalty() {
    let rows = fig2_handshake(&[256 * 1024]);
    let r = &rows[0];
    assert!(
        r.netmod_us > r.direct_us + 2.0,
        "netmod {:.1} must exceed bypass {:.1} by the extra handshake",
        r.netmod_us,
        r.direct_us
    );
}

#[test]
fn e11_latency_breakdown_matches_paper() {
    for row in latency_breakdown() {
        let err = (row.measured_us - row.paper_us).abs();
        assert!(
            err < 0.12,
            "{}: measured {:.2} vs paper {:.1}",
            row.layer,
            row.measured_us,
            row.paper_us
        );
    }
}
