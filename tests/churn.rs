//! Elastic-membership churn acceptance: a 64-rank job loses two nodes
//! (one mid-collective), survives a hang, and gains a late joiner — all
//! under live traffic, with conformance checking armed.
//!
//! The scenario (one rank per node, so node death == rank death; all
//! times simulated microseconds):
//!
//! * **Phase A** (t≈0): verified ring exchange over the 63 initial ranks.
//! * **t=400, crash #1**: node 9 dies. Survivors each push a rendezvous
//!   transfer at the corpse and must get a clean `Err(PeerDead)`; an
//!   ANY_SOURCE head with a parked specific receive from 9 must deliver
//!   the live match and fail the parked one.
//! * **t∈[800,836), hang**: node 5 freezes for less than `min_silence`
//!   while a verified ring runs across the window — a merely slow node
//!   that must NOT be declared dead (the inbound-credited hysteresis).
//! * **t=1510, crash #2 (mid-collective)**: node 23 dies inside a
//!   fault-tolerant barrier it never enters. The barrier must fail fast
//!   (poison propagation) on at least the ranks paired with the corpse,
//!   and must never deadlock.
//! * Survivor-group collectives (barrier + allreduce over the 61
//!   survivors) then complete with exact results.
//! * **t=2000, join**: node 63 comes up; first contact happens after the
//!   join (lazy VC + per-peer state creation) and round-trips verified
//!   payloads through the joiner's ANY_SOURCE receives.
//!
//! Every rank ends with `peer_entries == 0` for both corpses, and the
//! whole run — detection latencies, membership counters, rail counters —
//! replays bit-identically under the same seed.

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::{MembershipConfig, RetryConfig};
use mpich2_nmad_repro::obs::ObsConfig;
use mpich2_nmad_repro::simnet::{
    Cluster, FaultPlan, FaultSpec, NicModel, NodeWindow, Placement, SimDuration, SimTime,
};

const RANKS: usize = 64;
/// The late joiner.
const JOINER: usize = 63;
/// First corpse (dies between phases).
const DEAD1: usize = 9;
/// Second corpse (dies mid-collective).
const DEAD2: usize = 23;
/// The merely-slow node.
const SLOW: usize = 5;

const T_CRASH1: u64 = 400; // µs
const T_HANG_FROM: u64 = 800;
const T_HANG_UNTIL: u64 = 836; // 36µs < min_silence: must never go Dead
const T_PHASE_C: u64 = 1_500;
const T_CRASH2: u64 = 1_510;
const T_JOIN: u64 = 2_000;
/// Survivors first contact the joiner here (mpiexec-style join notice:
/// nobody may probe a rank before it exists, or the sticky Dead verdict
/// would poison the name forever).
const T_JOIN_SAFE: u64 = 2_050;

const TAG_RING: u32 = 11;
const TAG_PARKED: u32 = 12;
const TAG_CORPSE: u32 = 13;
const TAG_JOIN: u32 = 14;
/// Above the 16 KiB eager threshold: sends to a corpse must travel the
/// rendezvous path so the drain has an in-flight handshake to abort.
const RDV_LEN: usize = 64 * 1024;

fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn micros(t: u64) -> SimTime {
    SimTime::ZERO + SimDuration::micros(t)
}

/// Deterministic payload keyed by (src, round).
fn fill(src: usize, round: usize, len: usize) -> Vec<u8> {
    let mut x = 0xC4C4_u64 ^ ((src as u64 + 1) << 32) ^ ((round as u64 + 1) * 0x9E37_79B9);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// Busy-wait (simulated compute) until the rank's clock reaches `t` µs.
/// Chunked so a rank never disappears from the progress loop for long —
/// a live rank that stops acking would look exactly like a corpse.
fn wait_until(mpi: &MpiHandle, t: u64) {
    loop {
        let now = mpi.now().as_nanos();
        let target = t * 1_000;
        if now >= target {
            return;
        }
        let step = (target - now).min(5_000);
        mpi.compute(SimDuration::nanos(step));
        // Keep acking/progressing while we "compute" across a phase gap.
        let _ = mpi.iprobe(Src::Any, u32::MAX);
    }
}

/// Verified ring round `round` over `group` (blocking sendrecv with both
/// neighbours). Returns the number of payload bytes verified.
fn ring_round(mpi: &MpiHandle, group: &[usize], round: usize, len: usize) -> u64 {
    let pos = group.iter().position(|&r| r == mpi.rank()).unwrap();
    let n = group.len();
    let right = group[(pos + 1) % n];
    let left = group[(pos + n - 1) % n];
    let (data, st) = mpi.sendrecv(right, TAG_RING, &fill(mpi.rank(), round, len), Src::Rank(left), TAG_RING);
    assert_eq!(st.source, left);
    assert_eq!(&data[..], &fill(left, round, len)[..], "ring payload corrupt");
    data.len() as u64
}

/// What each rank reports back; the full vector is part of the replay
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RankReport {
    /// (peer, verdict ns, fail streak) from this rank's supervisor.
    death_log: Vec<(usize, u64, u64)>,
    /// Outcome of the mid-collective barrier (survivors only).
    barrier_err: Option<usize>,
    coll_aborts: u64,
    /// Verified payload bytes received over surviving pairs.
    bytes_ok: u64,
}

/// The rank program for the whole churn scenario.
fn churn_rank(mpi: &MpiHandle) -> RankReport {
    let me = mpi.rank();
    let initial: Vec<usize> = (0..RANKS - 1).collect(); // 0..=62
    let s2: Vec<usize> = initial.iter().copied().filter(|&r| r != DEAD1).collect();
    let s3: Vec<usize> = s2.iter().copied().filter(|&r| r != DEAD2).collect();
    let mut bytes_ok = 0u64;

    if me == JOINER {
        // Not born yet: the node window eats everything before T_JOIN, and
        // the program mirrors that by doing nothing at all.
        wait_until(mpi, T_JOIN);
        // First life: answer two verified echo requests through ANY_SOURCE
        // (per-peer state on both sides is created lazily, right now).
        for _ in 0..2 {
            let (data, st) = mpi.recv(Src::Any, TAG_JOIN);
            assert_eq!(&data[..], &fill(st.source, 0, 1024)[..], "joiner payload corrupt");
            bytes_ok += data.len() as u64;
            mpi.send(st.source, TAG_JOIN, &fill(JOINER, st.source, 512));
        }
        return RankReport {
            death_log: mpi.death_log(),
            barrier_err: None,
            coll_aborts: mpi.coll_aborts(),
            bytes_ok,
        };
    }

    // --- Phase A: healthy ring over the initial 63 ranks ---------------
    for round in 0..3 {
        bytes_ok += ring_round(mpi, &initial, round, 256);
    }

    if me == DEAD1 {
        wait_until(mpi, T_CRASH1);
        mpi.crash();
        return RankReport {
            death_log: vec![],
            barrier_err: None,
            coll_aborts: 0,
            bytes_ok,
        };
    }

    // --- Phase B: rendezvous at the corpse must fail cleanly -----------
    wait_until(mpi, T_CRASH1 + 10);
    if me == 0 {
        // ANY_SOURCE head with a specific receive from the corpse parked
        // behind it (§3.2.2 ordering): the head must still match live
        // traffic, the parked specific must fail on the death verdict.
        let r_any = mpi.irecv(Src::Any, TAG_PARKED);
        let r_spec = mpi.irecv(Src::Rank(DEAD1), TAG_PARKED);
        let s = mpi.isend(DEAD1, TAG_CORPSE, &fill(me, 0, RDV_LEN));
        let err = mpi.wait_result(s).expect_err("rendezvous at a corpse must fail");
        assert_eq!(err.peer, DEAD1);
        let (data, st) = mpi.wait_data(r_any);
        let (data, st) = (data.expect("any head matches live sender"), st.unwrap());
        assert_eq!(st.source, 1);
        assert_eq!(&data[..], &fill(1, 9, 400)[..]);
        bytes_ok += data.len() as u64;
        let err = mpi
            .wait_result(r_spec)
            .expect_err("parked specific from the corpse must fail");
        assert_eq!(err.peer, DEAD1);
    } else {
        if me == 1 {
            mpi.send(0, TAG_PARKED, &fill(1, 9, 400));
        }
        let s = mpi.isend(DEAD1, TAG_CORPSE, &fill(me, 0, RDV_LEN));
        let err = mpi.wait_result(s).expect_err("rendezvous at a corpse must fail");
        assert_eq!(err.peer, DEAD1);
    }
    assert!(!mpi.is_alive(DEAD1), "rank {me}: no verdict for corpse 9");

    // --- Phase B2: verified ring across the hang window -----------------
    // Node 5 freezes for 36µs inside this loop; its neighbours stall and
    // resume, and nobody may promote the stall to a death verdict.
    wait_until(mpi, T_HANG_FROM - 20);
    for round in 0..40 {
        bytes_ok += ring_round(mpi, &s2, 100 + round, 256);
    }
    assert!(mpi.is_alive(SLOW), "rank {me}: slow node falsely declared dead");

    if me == DEAD2 {
        // Dies mid-collective: everyone else enters the barrier at
        // T_PHASE_C; this rank never does.
        wait_until(mpi, T_CRASH2);
        mpi.crash();
        return RankReport {
            death_log: mpi.death_log(),
            barrier_err: None,
            coll_aborts: 0,
            bytes_ok,
        };
    }

    // --- Phase C: fault-tolerant barrier, corpse #2 mid-protocol --------
    wait_until(mpi, T_PHASE_C);
    let barrier_err = mpi.try_barrier(&s2).err().map(|e| e.peer);

    // --- Phase D: rendezvous at corpse #2, then survivor collectives ----
    let s = mpi.isend(DEAD2, TAG_CORPSE, &fill(me, 1, RDV_LEN));
    let err = mpi.wait_result(s).expect_err("rendezvous at corpse 23 must fail");
    assert_eq!(err.peer, DEAD2);
    assert!(!mpi.is_alive(DEAD2), "rank {me}: no verdict for corpse 23");

    mpi.barrier_group(&s3);
    let sum = mpi.allreduce_sum_group(&s3, &[me as f64]);
    let expect: f64 = s3.iter().map(|&r| r as f64).sum();
    assert_eq!(sum, vec![expect], "survivor allreduce wrong on rank {me}");

    // --- Phase E: the late joiner ---------------------------------------
    if me <= 1 {
        wait_until(mpi, T_JOIN_SAFE);
        mpi.send(JOINER, TAG_JOIN, &fill(me, 0, 1024));
        let (data, st) = mpi.recv(Src::Rank(JOINER), TAG_JOIN);
        assert_eq!(st.source, JOINER);
        assert_eq!(&data[..], &fill(JOINER, me, 512)[..], "joiner reply corrupt");
        bytes_ok += data.len() as u64;
    }

    // --- Final state: corpses drained, the slow node alive --------------
    assert_eq!(mpi.peer_entries(DEAD1), 0, "rank {me}: corpse 9 leaked entries");
    assert_eq!(mpi.peer_entries(DEAD2), 0, "rank {me}: corpse 23 leaked entries");
    assert!(mpi.is_alive(SLOW));
    RankReport {
        death_log: mpi.death_log(),
        barrier_err,
        coll_aborts: mpi.coll_aborts(),
        bytes_ok,
    }
}

/// Aggressive timing so the scenario fits in ~2ms of simulated time: a
/// dead verdict needs 4 attributed failures and 50µs of inbound silence
/// (the same constants the core membership tests use).
fn churn_stack(seed: u64) -> StackConfig {
    let mut stack = StackConfig::mpich2_nmad(false).with_obs(ObsConfig::full());
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); RANKS];
    nodes[DEAD1] = vec![NodeWindow::crash(micros(T_CRASH1))];
    nodes[DEAD2] = vec![NodeWindow::crash(micros(T_CRASH2))];
    nodes[SLOW] = vec![NodeWindow::hang(micros(T_HANG_FROM), micros(T_HANG_UNTIL))];
    nodes[JOINER] = vec![NodeWindow::join(micros(T_JOIN))];
    stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(50),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ))
}

fn run_churn(seed: u64) -> (RunOutcome, Vec<RankReport>) {
    let cluster = Cluster::new(RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(RANKS, &cluster);
    let stack = churn_stack(seed);
    run_mpi_collect(&cluster, &placement, &stack, RANKS, churn_rank)
}

/// Detection latencies (ns) for `peer` across all reports, with the
/// no-premature-verdict check built in.
fn latencies(reports: &[RankReport], peer: usize, crash_us: u64) -> Vec<u64> {
    let crash_ns = crash_us * 1_000;
    let mut out = Vec::new();
    for (rank, rep) in reports.iter().enumerate() {
        for &(p, t, streak) in &rep.death_log {
            if p != peer {
                continue;
            }
            assert!(
                t > crash_ns,
                "rank {rank} declared {peer} dead at {t}ns, before the crash at {crash_ns}ns"
            );
            assert!(streak >= 4, "verdict with streak {streak} < dead_after");
            out.push(t - crash_ns);
        }
    }
    out
}

#[test]
fn churn_crash_hang_join_under_live_traffic() {
    let seed = 0xC4C4_0000 ^ seed_base();
    let (outcome, reports) = run_churn(seed);

    // Every survivor (everyone but the two corpses) detected both deaths.
    let survivors: Vec<usize> = (0..RANKS)
        .filter(|&r| r != DEAD1 && r != DEAD2 && r != JOINER)
        .collect();
    let lat1 = latencies(&reports, DEAD1, T_CRASH1);
    let lat2 = latencies(&reports, DEAD2, T_CRASH2);
    assert_eq!(lat1.len(), survivors.len() + 1, "corpse 9: 61 survivors + rank 23");
    assert_eq!(lat2.len(), survivors.len(), "corpse 23: every survivor");
    // Detection is prompt but never hair-triggered: the first verdict
    // lands within the retry/probe horizon, and the histogram never
    // undercuts the hysteresis floor.
    let min1 = *lat1.iter().min().unwrap();
    let max2 = *lat2.iter().max().unwrap();
    println!(
        "detection latency: corpse 9 min {}µs, corpse 23 max {}µs",
        min1 / 1_000,
        max2 / 1_000
    );
    assert!(min1 >= 25_000, "verdict faster than any hysteresis: {min1}ns");
    assert!(min1 <= 600_000, "first detection of corpse 9 too slow: {min1}ns");
    assert!(max2 <= 1_500_000, "slowest detection of corpse 23: {max2}ns");
    // Nobody ever declared the merely-hung node dead.
    for rep in &reports {
        assert!(rep.death_log.iter().all(|&(p, _, _)| p == DEAD1 || p == DEAD2));
    }

    // The mid-collective death aborted the barrier on at least the six
    // ranks directly paired with the corpse, and the poison named it.
    let aborted: Vec<usize> = survivors
        .iter()
        .copied()
        .filter(|&r| reports[r].barrier_err.is_some())
        .collect();
    assert!(aborted.len() >= 6, "only {} barrier aborts: {:?}", aborted.len(), aborted);
    for &r in &aborted {
        assert_eq!(reports[r].barrier_err, Some(DEAD2));
    }
    let coll_aborts: u64 = reports.iter().map(|r| r.coll_aborts).sum();
    assert!(coll_aborts >= 6, "coll_aborts counter lagging: {coll_aborts}");

    // Job-wide membership accounting moved in every dimension the drain
    // touches.
    let m = outcome.membership_totals();
    println!("membership totals: {m:?}");
    assert!(m.dead_peers as usize >= 2 * survivors.len(), "{m:?}");
    assert!(m.transitions > 0 && m.aborted_sends > 0, "{m:?}");
    assert!(m.drained_entries > 0, "death verdicts drained nothing: {m:?}");
    let drops = outcome.fault_counters.expect("fault plan armed").node_drops;
    assert!(drops > 0, "node windows never ate a frame");

    // Surviving-pair traffic was delivered byte-exact (the asserts inside
    // the program) and in nonzero volume everywhere.
    for &r in &survivors {
        assert!(reports[r].bytes_ok > 0, "rank {r} verified no bytes");
    }
    assert!(reports[JOINER].bytes_ok > 0, "joiner verified no bytes");
}

#[test]
fn churn_replays_bit_identically() {
    let seed = 0xC4C4_0000 ^ seed_base();
    let (a, ra) = run_churn(seed);
    let (b, rb) = run_churn(seed);
    assert_eq!(ra, rb, "per-rank reports diverged between replays");
    assert_eq!(a.sim.final_time, b.sim.final_time);
    assert_eq!(a.sim.events, b.sim.events);
    // nm_stats carries every membership_* counter per rank.
    assert_eq!(a.nm_stats, b.nm_stats, "per-rank core stats diverged");
    assert_eq!(a.rail_counters, b.rail_counters);
    assert_eq!(a.fault_counters, b.fault_counters);
    assert_eq!(a.membership_totals(), b.membership_totals());
}
