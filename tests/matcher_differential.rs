//! Differential equivalence: the per-gate sharded matcher must be
//! observationally identical to the single-queue [`MatchEngine`] oracle.
//!
//! The sharded engine (`nmad::sharded`) re-implements NewMadeleine's tag
//! matching with per-gate locks and a global arrival ticket for
//! ANY_SOURCE arbitration. Nothing about its *answers* may change: this
//! test replays recorded envelope streams — seeded random interleavings
//! of posts, eager/RTS arrivals, probes, membership purges and epoch
//! quiesces, with the mix skewed per seed toward overload (arrival
//! bursts) or faults (purge-heavy) — into both engines and demands
//! identical results for every operation, plus identical queue lengths
//! after every step.
//!
//! A proptest then extends the CH3 "posted ∩ unexpected = ∅" invariant
//! (see `tests/properties.rs`) to the sharded layout: no interleaving may
//! leave a (gate, tag) claimable from both queues, and the engine must
//! agree with a shadow model on every probe.

use std::collections::HashMap;

use nmad::matching::{MatchEngine, Unexpected};
use nmad::sharded::ShardedMatchEngine;
use nmad::{GateId, RecvReqId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::NmBuf;

const GATES: usize = 4;
const TAGS: u64 = 4;

/// One recorded envelope-stream event.
#[derive(Clone, Debug)]
enum Op {
    Post { gate: usize, tag: u64 },
    Arrive { gate: usize, tag: u64, rdv: bool, len: usize },
    Probe { gate: usize, tag: u64 },
    ProbeTag { tag: u64 },
    PurgeGate { gate: usize },
    PurgeTagsBelow { below: u64 },
}

/// Observable fingerprint of an unexpected message (payload identity
/// included via its length; bytes are a pure function of it here).
fn fp(m: &Unexpected) -> (u8, u64, u64, usize) {
    match m {
        Unexpected::Eager { seq, data } => (1, *seq, 0, data.len()),
        Unexpected::Rts { seq, rdv_id, len } => (2, *seq, *rdv_id, *len),
    }
}

/// Generate a seeded stream. `seed % 4` picks the traffic profile:
/// balanced, overload (arrival-heavy, long unexpected queues), faulty
/// (purge-heavy, constant gate churn), or probe-heavy (ANY_SOURCE
/// arbitration under pressure).
fn stream(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights: [u32; 6] = match seed % 4 {
        0 => [30, 30, 10, 10, 10, 10], // balanced
        1 => [15, 60, 5, 10, 5, 5],    // overload
        2 => [25, 25, 5, 5, 25, 15],   // faulty
        _ => [20, 25, 20, 30, 3, 2],   // probe-heavy
    };
    let total: u32 = weights.iter().sum();
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let mut pick = rng.gen_range(0..total);
        let mut kind = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                kind = i;
                break;
            }
            pick -= w;
        }
        let gate = rng.gen_range(0..GATES);
        let tag = rng.gen_range(0..TAGS);
        out.push(match kind {
            0 => Op::Post { gate, tag },
            1 => Op::Arrive {
                gate,
                tag,
                rdv: rng.gen_bool(0.25),
                len: rng.gen_range(1..2048),
            },
            2 => Op::Probe { gate, tag },
            3 => Op::ProbeTag { tag },
            4 => Op::PurgeGate { gate },
            _ => Op::PurgeTagsBelow {
                below: rng.gen_range(1..=TAGS),
            },
        });
    }
    out
}

/// Replay one stream into both engines, asserting identical observables
/// at every step.
fn replay_differential(seed: u64) {
    let ops = stream(seed, 400);
    let mut oracle = MatchEngine::new();
    let sharded = ShardedMatchEngine::new();
    // Arrival sequence numbers are per-(gate, tag) monotonic, as the wire
    // guarantees.
    let mut next_seq: HashMap<(usize, u64), u64> = HashMap::new();
    let mut next_req = 0u32;
    let mut next_rdv = 0u64;
    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::Post { gate, tag } => {
                let req = RecvReqId(next_req);
                next_req += 1;
                let a = oracle.post_recv(GateId(gate), tag, req);
                let b = sharded.post_recv(GateId(gate), tag, req);
                assert_eq!(
                    a.as_ref().map(fp),
                    b.as_ref().map(fp),
                    "post_recv diverged at step {step} (seed {seed})"
                );
            }
            Op::Arrive { gate, tag, rdv, len } => {
                let seq = next_seq.entry((gate, tag)).or_insert(0);
                let msg = if rdv {
                    next_rdv += 1;
                    Unexpected::Rts {
                        seq: *seq,
                        rdv_id: next_rdv,
                        len,
                    }
                } else {
                    Unexpected::Eager {
                        seq: *seq,
                        data: NmBuf::from(vec![(*seq as u8).wrapping_add(gate as u8); len]),
                    }
                };
                *seq += 1;
                let a = oracle.arrived(GateId(gate), tag, msg.clone());
                let b = sharded.arrived(GateId(gate), tag, msg);
                assert_eq!(a, b, "arrived diverged at step {step} (seed {seed})");
            }
            Op::Probe { gate, tag } => {
                assert_eq!(oracle.probe(GateId(gate), tag), sharded.probe(GateId(gate), tag));
                assert_eq!(
                    oracle.probe_info(GateId(gate), tag),
                    sharded.probe_info(GateId(gate), tag),
                    "probe_info diverged at step {step} (seed {seed})"
                );
            }
            Op::ProbeTag { tag } => {
                // ANY_SOURCE arbitration: the ticket minimum must name the
                // same gate as the oracle's global arrival order.
                assert_eq!(
                    oracle.probe_tag_info(tag),
                    sharded.probe_tag_info(tag),
                    "ANY_SOURCE arbitration diverged at step {step} (seed {seed})"
                );
            }
            Op::PurgeGate { gate } => {
                let a = oracle.purge_gate(GateId(gate));
                let b = sharded.purge_gate(GateId(gate));
                assert_eq!(a, b, "purge_gate diverged at step {step} (seed {seed})");
            }
            Op::PurgeTagsBelow { below } => {
                let a = oracle.purge_keys(|t| t < below);
                let b = sharded.purge_keys(|t| t < below);
                assert_eq!(a, b, "purge_keys diverged at step {step} (seed {seed})");
            }
        }
        assert_eq!(oracle.posted_len(), sharded.posted_len());
        assert_eq!(oracle.unexpected_len(), sharded.unexpected_len());
        assert_eq!(oracle.posted_gates(), sharded.posted_gates());
    }
}

#[test]
fn sharded_matcher_equals_single_queue_oracle_across_seed_sweep() {
    // 32 recorded streams × 400 events, covering all four traffic
    // profiles (balanced / overload / faulty / probe-heavy) eight times
    // each with different interleavings.
    for seed in 0..32 {
        replay_differential(seed);
    }
}

// ---------------------------------------------------------------------
// posted ∩ unexpected = ∅, sharded layout
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum POp {
    Post { gate: usize, tag: u64 },
    Arrive { gate: usize, tag: u64, len: usize },
    PurgeGate { gate: usize },
    PurgeTag { tag: u64 },
}

fn pop_strategy() -> impl Strategy<Value = POp> {
    prop_oneof![
        (0usize..GATES, 0u64..TAGS).prop_map(|(gate, tag)| POp::Post { gate, tag }),
        (0usize..GATES, 0u64..TAGS, 1usize..512)
            .prop_map(|(gate, tag, len)| POp::Arrive { gate, tag, len }),
        (0usize..GATES).prop_map(|gate| POp::PurgeGate { gate }),
        (0u64..TAGS).prop_map(|tag| POp::PurgeTag { tag }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128, // pure queue ops, cheap to run wide
        .. ProptestConfig::default()
    })]

    /// For ANY interleaving of posts, arrivals and purges, no (gate, tag)
    /// is ever claimable from both the posted and the unexpected side of
    /// the sharded layout, and the engine agrees with a shadow model on
    /// every probe and length.
    #[test]
    fn sharded_posted_and_unexpected_stay_disjoint(
        ops in proptest::collection::vec(pop_strategy(), 1..80)
    ) {
        let m = ShardedMatchEngine::new();
        // Shadow model: per-(gate, tag) posted count and unexpected FIFO.
        let mut posted: HashMap<(usize, u64), usize> = HashMap::new();
        let mut unex: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
        let mut next_seq: HashMap<(usize, u64), u64> = HashMap::new();
        let mut next_req = 0u32;
        for op in ops {
            match op {
                POp::Post { gate, tag } => {
                    let req = RecvReqId(next_req);
                    next_req += 1;
                    let got = m.post_recv(GateId(gate), tag, req);
                    let q = unex.entry((gate, tag)).or_default();
                    if q.is_empty() {
                        prop_assert!(got.is_none(), "engine invented an unexpected hit");
                        *posted.entry((gate, tag)).or_insert(0) += 1;
                    } else {
                        let len = q.remove(0);
                        match got {
                            Some(Unexpected::Eager { data, .. }) =>
                                prop_assert_eq!(data.len(), len, "consumed out of FIFO order"),
                            _ => prop_assert!(false, "engine missed a waiting unexpected"),
                        }
                    }
                }
                POp::Arrive { gate, tag, len } => {
                    let seq = next_seq.entry((gate, tag)).or_insert(0);
                    let msg = Unexpected::Eager {
                        seq: *seq,
                        data: NmBuf::from(vec![0u8; len]),
                    };
                    *seq += 1;
                    let matched = m.arrived(GateId(gate), tag, msg);
                    let count = posted.entry((gate, tag)).or_insert(0);
                    if *count > 0 {
                        prop_assert!(matched.is_some(), "engine missed a posted receive");
                        *count -= 1;
                    } else {
                        prop_assert!(matched.is_none(), "engine matched a phantom receive");
                        unex.entry((gate, tag)).or_default().push(len);
                    }
                }
                POp::PurgeGate { gate } => {
                    let (orphans, _) = m.purge_gate(GateId(gate));
                    let model_orphans: usize = posted
                        .iter()
                        .filter(|(&(g, _), &c)| g == gate && c > 0)
                        .map(|(_, &c)| c)
                        .sum();
                    prop_assert_eq!(orphans.len(), model_orphans);
                    posted.retain(|&(g, _), _| g != gate);
                    unex.retain(|&(g, _), _| g != gate);
                }
                POp::PurgeTag { tag } => {
                    let (orphans, dropped, _) = m.purge_keys(|t| t == tag);
                    let model_orphans: usize = posted
                        .iter()
                        .filter(|(&(_, t), &c)| t == tag && c > 0)
                        .map(|(_, &c)| c)
                        .sum();
                    let model_dropped: usize = unex
                        .iter()
                        .filter(|(&(_, t), _)| t == tag)
                        .map(|(_, q)| q.len())
                        .sum();
                    prop_assert_eq!(orphans.len(), model_orphans);
                    prop_assert_eq!(dropped, model_dropped);
                    posted.retain(|&(_, t), _| t != tag);
                    unex.retain(|&(_, t), _| t != tag);
                }
            }
            // THE invariant, on the sharded layout: a (gate, tag) with a
            // posted receive has nothing claimable unexpected, and vice
            // versa.
            for (&(g, t), q) in &unex {
                prop_assert!(
                    q.is_empty() || posted.get(&(g, t)).copied().unwrap_or(0) == 0,
                    "(gate {g}, tag {t}) claimable from both queues"
                );
            }
            // Engine observables agree with the model.
            let model_posted: usize = posted.values().sum();
            let model_unex: usize = unex.values().map(|q| q.len()).sum();
            prop_assert_eq!(m.posted_len(), model_posted);
            prop_assert_eq!(m.unexpected_len(), model_unex);
            for g in 0..GATES {
                for t in 0..TAGS {
                    let waiting = unex.get(&(g, t)).is_some_and(|q| !q.is_empty());
                    prop_assert_eq!(m.probe(GateId(g), t), waiting);
                    let front = unex.get(&(g, t)).and_then(|q| q.first().copied());
                    prop_assert_eq!(m.probe_info(GateId(g), t), front);
                }
            }
        }
    }
}
