//! Deterministic multirail failover and recovery acceptance tests.
//!
//! A two-rank job on the paper's two-rail Xeon pair (ConnectX IB +
//! Myri-10G) exchanges large rendezvous rounds while a scheduled
//! [`LinkWindow`] kills one rail mid-run. The rail-health state machine
//! must demote the dead rail, reroute its in-flight chunks via the retry
//! layer, and keep the job flowing over the survivor at a sustained rate
//! comparable to a single-rail healthy run. When the window closes, the
//! probing machinery must re-admit the revived rail and the split
//! strategy must start using it again. All of it replays bit-for-bit
//! from the master seed.

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::core::NmStats;
use mpich2_nmad_repro::simnet::{
    Cluster, FaultCounters, FaultPlan, FaultSpec, LinkWindow, Placement, SimDuration, SimTime,
};

/// One round moves this many bytes in each direction (rendezvous path,
/// split across both rails while both are healthy).
const LEN: usize = 256 * 1024;
const TAG: u32 = 7;
const SEED: u64 = 0xFA11_0E55;

/// Deterministic payload: a cheap LCG keyed by (rank, round).
fn fill(rank: usize, round: usize) -> Vec<u8> {
    let mut x = SEED
        ^ ((rank as u64 + 1) << 32)
        ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..LEN)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// Bidirectional large-message rounds; returns the simulated completion
/// time of each round (nanoseconds). Payloads are verified byte-exact, so
/// a run that returns has already proven every message survived the kill.
fn rounds_rank(mpi: &MpiHandle, rounds: usize) -> Vec<u64> {
    let me = mpi.rank();
    let peer = 1 - me;
    let mut marks = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let r = mpi.irecv(Src::Rank(peer), TAG);
        let s = mpi.isend(peer, TAG, &fill(me, round));
        let (data, _) = mpi.wait_data(r);
        let data = data.expect("receive carries data");
        assert_eq!(
            &data[..],
            &fill(peer, round)[..],
            "round {round} payload corrupt after failover"
        );
        mpi.wait(s);
        marks.push(mpi.now().as_nanos());
    }
    marks
}

/// Run the two-rank round exchange under `stack`; returns the outcome and
/// rank 0's per-round completion times (both ranks progress in lockstep).
fn run_rounds(stack: &StackConfig, rounds: usize) -> (RunOutcome, Vec<u64>) {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let (outcome, mut marks) =
        run_mpi_collect(&cluster, &placement, stack, 2, move |mpi| {
            rounds_rank(mpi, rounds)
        });
    (outcome, marks.swap_remove(0))
}

/// Everything a replay must reproduce bit-for-bit.
#[derive(Debug, PartialEq)]
struct Observables {
    final_time: SimTime,
    events: u64,
    nm_stats: Vec<NmStats>,
    rail_counters: Vec<(u64, u64)>,
    fault_counters: Option<FaultCounters>,
    marks: Vec<u64>,
}

fn observe(outcome: &RunOutcome, marks: &[u64]) -> Observables {
    Observables {
        final_time: outcome.sim.final_time,
        events: outcome.sim.events,
        nm_stats: outcome.nm_stats.clone(),
        rail_counters: outcome.rail_counters.clone(),
        fault_counters: outcome.fault_counters,
        marks: marks.to_vec(),
    }
}

/// Scheduled kill of rail 1 at `at` for `duration`; no probabilistic
/// faults, so every observed retry/transition is attributable to the
/// scheduled window alone.
fn kill_rail1(at: SimDuration, duration: SimDuration) -> StackConfig {
    StackConfig::mpich2_nmad(false).with_faults(FaultPlan::with_links(
        SEED,
        vec![FaultSpec::default(), FaultSpec::default()],
        vec![
            vec![],
            vec![LinkWindow::down(SimTime::ZERO + at, duration)],
        ],
    ))
}

/// Mean bytes-per-nanosecond over the rounds completing in `window` of
/// the marks (both directions count: 2·LEN per round).
fn bandwidth(marks: &[u64], from_round: usize, to_round: usize) -> f64 {
    let elapsed = (marks[to_round - 1] - marks[from_round - 1]) as f64;
    ((to_round - from_round) * 2 * LEN) as f64 / elapsed
}

const ROUNDS: usize = 20;
/// Rail 1 dies while round 3-ish is in flight (calibrated against the
/// healthy per-round time printed by the tests under `--nocapture`).
const KILL_AT: SimDuration = SimDuration::micros(700);

#[test]
fn rail_death_mid_run_reroutes_and_sustains_bandwidth() {
    // Healthy single-rail baseline: the survivor (rail 0) alone.
    let single = StackConfig::mpich2_nmad_rail(0, false).with_fabric_seed(SEED);
    let (_, base_marks) = run_rounds(&single, ROUNDS);
    let base_bw = bandwidth(&base_marks, ROUNDS - 4, ROUNDS);

    // Kill rail 1 mid-run and never bring it back.
    let (outcome, marks) = run_rounds(&kill_rail1(KILL_AT, SimDuration::secs(3600)), ROUNDS);
    println!("healthy single-rail marks (ns): {base_marks:?}");
    println!("failover marks (ns):            {marks:?}");

    // The kill actually landed mid-run: some rounds completed before it.
    assert!(
        marks[1] < KILL_AT.as_nanos() && *marks.last().unwrap() > KILL_AT.as_nanos(),
        "kill at {KILL_AT:?} did not land mid-run: {marks:?}"
    );

    // The health machine demoted the rail and rerouted its chunks.
    let (transitions, rerouted, degraded) = outcome.failover_totals();
    assert!(transitions >= 2, "no rail demotion recorded: {transitions}");
    assert!(rerouted > 0, "no bytes rerouted off the dead rail");
    assert!(degraded > 0, "no degraded time accumulated");
    let retries: u64 = outcome.nm_stats.iter().map(|s| s.total_retries()).sum();
    assert!(retries > 0, "failover without a single retransmission");

    // Sustained post-failure bandwidth on the survivor: ≥ 80% of the
    // healthy single-rail run (the last rounds are pure survivor traffic).
    let post_bw = bandwidth(&marks, ROUNDS - 4, ROUNDS);
    println!(
        "single-rail healthy {:.3} B/ns, post-failure {:.3} B/ns",
        base_bw, post_bw
    );
    assert!(
        post_bw >= 0.8 * base_bw,
        "degraded-mode bandwidth collapsed: {post_bw:.3} B/ns vs healthy single-rail {base_bw:.3} B/ns"
    );

    // Replay identity: every counter and timestamp, bit for bit. The
    // fault plan's injection counters live in the plan, so the replay
    // builds a fresh one from the same seed.
    let (outcome2, marks2) = run_rounds(&kill_rail1(KILL_AT, SimDuration::secs(3600)), ROUNDS);
    assert_eq!(
        observe(&outcome, &marks),
        observe(&outcome2, &marks2),
        "failover run did not replay bit-identically"
    );
}

#[test]
fn revived_rail_is_readmitted_and_split_returns() {
    const LONG: usize = 24;
    // Down long enough for the hysteresis to demote the rail all the way
    // to `Down` (four blamed timeouts at ~400 µs per stalled round), then
    // the recovery probes must re-admit it.
    let down_for = SimDuration::millis(2);
    let (outcome, marks) = run_rounds(&kill_rail1(KILL_AT, down_for), LONG);
    println!("recovery marks (ns): {marks:?}");

    // Traffic continued well past the window's close.
    let reopen = (KILL_AT + down_for).as_nanos();
    assert!(
        *marks.last().unwrap() > reopen + 500_000,
        "job too short to observe recovery"
    );

    // Full cycle: Up → Suspect → Down → Probing → Up is four transitions.
    let (transitions, _, degraded) = outcome.failover_totals();
    let (probes, acks) = outcome.probe_totals();
    assert!(
        transitions >= 4,
        "revived rail never walked the full state cycle: {transitions} transitions"
    );
    assert!(probes > 0, "no probes sent while the rail was down");
    assert!(
        acks >= 2,
        "re-admission requires probe acks (got {acks} of {probes} probes)"
    );
    assert!(degraded > 0, "no degraded time accumulated");

    // The revived rail carries real payload again: its byte total must
    // clearly exceed what a never-recovered run leaves on it.
    let (kill_outcome, _) = run_rounds(&kill_rail1(KILL_AT, SimDuration::secs(3600)), LONG);
    let revived_bytes = outcome.rail_counters[1].1;
    let dead_bytes = kill_outcome.rail_counters[1].1;
    println!("rail 1 bytes: revived {revived_bytes}, never-revived {dead_bytes}");
    assert!(
        revived_bytes > dead_bytes + (LEN as u64),
        "revived rail carries no new payload: {revived_bytes} vs {dead_bytes}"
    );

    // Healthy-ratio check: after recovery the split strategy hands rail 1
    // a healthy share again — at least a quarter of what an always-healthy
    // run gives it over the same workload.
    let healthy = StackConfig::mpich2_nmad(false).with_fabric_seed(SEED);
    let (healthy_outcome, _) = run_rounds(&healthy, LONG);
    let healthy_bytes = healthy_outcome.rail_counters[1].1;
    println!("rail 1 bytes healthy run: {healthy_bytes}");
    assert!(
        revived_bytes * 4 > healthy_bytes,
        "post-recovery split never returned to rail 1: {revived_bytes} vs healthy {healthy_bytes}"
    );

    // Recovery replays bit-identically too (fresh plan, same seed).
    let (outcome2, marks2) = run_rounds(&kill_rail1(KILL_AT, down_for), LONG);
    assert_eq!(
        observe(&outcome, &marks),
        observe(&outcome2, &marks2),
        "recovery run did not replay bit-identically"
    );
}
