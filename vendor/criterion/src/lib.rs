//! Offline drop-in subset of `criterion`.
//!
//! Provides just enough of the criterion API for the workspace's
//! `harness = false` benchmarks to compile and run: benchmark groups,
//! `bench_function`, `iter`/`iter_batched`, throughput annotation, and
//! the `criterion_group!`/`criterion_main!` macros. Instead of the full
//! statistical engine it does a short calibrated run and reports mean
//! ns/iter — adequate for smoke-running benches in an offline container;
//! real statistics require the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let target_time = self.target_time;
        BenchmarkGroup {
            _parent: self,
            target_time,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.target_time, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    target_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.target_time, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(name: &str, target: Duration, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        target,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * b.iters as f64 / b.elapsed.as_secs_f64();
            println!("  {name}: {ns:.1} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * b.iters as f64 / b.elapsed.as_secs_f64() / 1e6;
            println!("  {name}: {ns:.1} ns/iter ({rate:.1} MB/s)");
        }
        None => println!("  {name}: {ns:.1} ns/iter"),
    }
}

pub struct Bencher {
    target: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it is long enough to time.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.iters += batch;
                self.elapsed += dt;
                break;
            }
            batch *= 4;
        }
        // Measured run up to the target time.
        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.target;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
