//! Offline drop-in subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, `collection::vec`, weighted [`prop_oneof!`], and the
//! [`proptest!`] test macro with `ProptestConfig { cases, .. }`.
//!
//! Differences from the real crate, chosen deliberately for an offline,
//! deterministic-simulation repository:
//!
//! * **No shrinking.** On failure the harness prints every generated
//!   input (plus the per-case seed) instead of minimising it; inputs
//!   here are small by construction.
//! * **Derived determinism.** Each case's RNG seed is a pure function of
//!   the test name and case index (overridable via `PROPTEST_SEED`), so
//!   failures reproduce exactly across runs and machines.

use std::fmt::Debug;

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-case random source handed to strategies.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runner configuration. Construct with struct-update syntax:
    /// `ProptestConfig { cases: 12, ..ProptestConfig::default() }`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Maximum strategy rejections (accepted for API compatibility;
        /// this subset has no `prop_filter`, so it is never consulted).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            ProptestConfig {
                cases,
                max_global_rejects: 1024,
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Drive `case` once per configured case with a deterministic,
    /// name-derived seed. `case` receives the RNG and a sink it fills
    /// with Debug renderings of the generated inputs; on panic those are
    /// printed together with the seed so the failure replays exactly.
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng, &mut Vec<String>),
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name));
        for i in 0..config.cases {
            let seed = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::from_seed(seed);
            let mut inputs = Vec::new();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng, &mut inputs)
            }));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: {test_name} failed at case {i}/{} (seed {seed:#x})",
                    config.cases
                );
                for (j, input) in inputs.iter().enumerate() {
                    eprintln!("  input[{j}] = {input}");
                }
                eprintln!("  rerun with PROPTEST_SEED={base} to replay the whole sequence");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident / $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Weighted choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Types with a canonical "any value" strategy ([`super::arbitrary::any`]).
    pub trait Arbitrary: Sized + Debug {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub struct AnyOf<T>(std::marker::PhantomData<T>);

    impl<T> Default for AnyOf<T> {
        fn default() -> Self {
            AnyOf(std::marker::PhantomData)
        }
    }

    impl Strategy for AnyOf<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyOf<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyOf::default()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyOf<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyOf<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyOf::default()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use super::strategy::Arbitrary;

    /// `any::<T>()` — the canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy on empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-definition macro. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_config = $config;
                $crate::test_runner::run_cases(
                    &__pt_config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__pt_rng, __pt_inputs| {
                        $(
                            let __pt_value =
                                $crate::strategy::Strategy::sample(&($strat), __pt_rng);
                            __pt_inputs.push(format!(
                                "{} = {:?}",
                                stringify!($pat),
                                &__pt_value
                            ));
                            let $pat = __pt_value;
                        )+
                        $body
                    },
                );
            }
        )*
    };
}

// Re-export at the crate root the way real proptest does.
pub use strategy::Strategy;

#[allow(unused_imports)]
use Debug as _;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(v in crate::collection::vec((0u64..100, any::<bool>()), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (n, _b) in &v {
                prop_assert!(*n < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        /// Weighted oneof picks every arm eventually and maps correctly.
        #[test]
        fn oneof_and_map(xs in crate::collection::vec(
            prop_oneof![
                3 => (0u32..10).prop_map(|x| x as u64),
                1 => Just(99u64),
            ],
            1..50,
        )) {
            for x in xs {
                prop_assert!(x < 10 || x == 99);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::test_runner::TestRng::from_seed(7);
        let mut b = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
