//! Offline drop-in subset of `crossbeam`.
//!
//! Provides `crossbeam::queue::SegQueue` with the API surface the
//! workspace uses (`new`/`push`/`pop`/`len`/`is_empty`). The real crate
//! is a lock-free segmented queue; this stand-in uses a mutexed
//! `VecDeque`, which preserves the exact FIFO semantics (and, under the
//! deterministic simulator, identical observable behaviour) at the cost
//! of raw multi-core throughput — acceptable for an offline build whose
//! contended path is exercised by simulated threads.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            for i in 0..10 {
                q.push(i);
            }
            for i in 0..10 {
                assert_eq!(q.pop(), Some(i));
            }
            assert_eq!(q.pop(), None);
        }
    }
}
