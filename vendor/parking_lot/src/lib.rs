//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the
//! workspace relies on: non-poisoning `lock()` returning the guard
//! directly (no `Result`). Poison from a panicked holder is swallowed,
//! matching `parking_lot`'s behaviour of not propagating poison.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<'a, T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
