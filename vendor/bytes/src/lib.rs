//! Offline drop-in subset of the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by an
//! `Arc` — `clone`/`slice`/`advance` share the allocation instead of
//! copying, which matters because the simulator threads multi-megabyte
//! rendezvous payloads through many queue hops. [`BytesMut`] is a plain
//! growable buffer that freezes into a [`Bytes`]. [`Buf`] provides the
//! little-endian cursor reads the CH3 packet codec uses.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Static(s) => Repr::Static(s),
            Repr::Shared(a) => Repr::Shared(Arc::clone(a)),
        }
    }
}

/// Immutable shared byte buffer: a `(storage, start, end)` view.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy `data` into a fresh owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    fn storage(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_slice(),
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.storage()[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same storage (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Address of the first byte of the *backing storage* (not of this
    /// view). Two `Bytes` alias the same allocation iff their storage
    /// pointers are equal. Only meaningful for comparison; never
    /// dereference it.
    pub fn storage_ptr(&self) -> *const u8 {
        self.storage().as_ptr()
    }

    /// Strong count of the shared backing allocation, or `None` for
    /// `'static` storage (which is never refcounted). A count > 1 proves
    /// the allocation is aliased by another live `Bytes`.
    pub fn ref_count(&self) -> Option<usize> {
        match &self.repr {
            Repr::Static(_) => None,
            Repr::Shared(a) => Some(Arc::strong_count(a)),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "... ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Cursor-style reads over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice_impl(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice_impl(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice_impl(&mut b);
        u64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_to_slice_impl(dst)
    }

    #[doc(hidden)]
    fn copy_to_slice_impl(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "read past end of buffer");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            off += n;
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, Bytes, BytesMut};

    #[test]
    fn slice_shares_storage_and_indexes_correctly() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let s2 = s.slice(1..=2);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn buf_cursor_reads() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u64_le(0xDEAD_BEEF);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn split_to_partitions() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn equality_with_vec_and_slice() {
        let b = Bytes::from(vec![9, 9, 9]);
        assert_eq!(b, vec![9u8, 9, 9]);
        assert_eq!(b, &[9u8, 9, 9][..]);
    }
}
