//! Self-tests of the offline loom subset: the checker must (a) pass
//! correct code, and (b) *find* the classic bug classes — torn RMW,
//! lost wakeup, deadlock — so a green loom suite elsewhere means
//! something.

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

#[test]
fn atomic_increment_is_linearizable() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
#[should_panic]
fn torn_read_modify_write_is_caught() {
    // load-then-store "increment": the schedule where both threads load 0
    // exists and must be found.
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_protects_plain_counter() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

#[test]
fn condvar_handoff_with_state_has_no_lost_wakeup() {
    // The WakeCell pattern: state under the mutex, re-checked in a wait
    // loop. Correct — must pass under every schedule.
    loom::model(|| {
        let cell = Arc::new((Mutex::new(false), Condvar::new()));
        let c2 = Arc::clone(&cell);
        let waiter = loom::thread::spawn(move || {
            let (m, cv) = &*c2;
            let mut go = m.lock().unwrap();
            while !*go {
                go = cv.wait(go).unwrap();
            }
        });
        let (m, cv) = &*cell;
        *m.lock().unwrap() = true;
        cv.notify_one();
        waiter.join().unwrap();
    });
}

#[test]
#[should_panic]
fn naked_condvar_wait_loses_the_wakeup() {
    // No state flag: if notify fires before the wait, the waiter sleeps
    // forever. The deadlock detector must find that schedule.
    loom::model(|| {
        let cell = Arc::new((Mutex::new(()), Condvar::new()));
        let c2 = Arc::clone(&cell);
        let waiter = loom::thread::spawn(move || {
            let (m, cv) = &*c2;
            let g = m.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        });
        let (_, cv) = &*cell;
        cv.notify_one();
        waiter.join().unwrap();
    });
}

#[test]
#[should_panic]
fn abba_deadlock_is_caught() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
}

#[test]
fn yield_breaks_spin_livelock() {
    // A consumer spinning (with yield) for a producer's store must
    // terminate in every schedule rather than tripping the livelock cap.
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let producer = loom::thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            loom::thread::yield_now();
        }
        producer.join().unwrap();
    });
}

#[test]
fn message_passing_litmus_is_sequentially_consistent() {
    // mp: x=1; y=1 || r1=y; r2=x. Under SC, r1==1 implies r2==1.
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.store(1, Ordering::SeqCst);
        });
        let r1 = y.load(Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        assert!(!(r1 == 1 && r2 == 0), "SC violated: saw y=1 but x=0");
        t.join().unwrap();
    });
}
