//! The DFS schedule explorer: re-run the model closure once per schedule.

use std::sync::Arc;

use crate::sched::Exec;

/// Default preemption bound — schedules with more forced context switches
/// than this are pruned (voluntary switches are free). 3 covers every
/// published bug class for the small lock-free kernels we check (CHESS
/// found all known Win7 sync bugs at bound 2).
const DEFAULT_PREEMPTION_BOUND: usize = 3;

/// Safety valve: panic rather than spin forever on a model whose schedule
/// space outgrew the bound.
const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

/// Configured exploration, mirroring `loom::model::Builder`.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum forced context switches per schedule (`None` = unbounded —
    /// only sensible for very small models).
    pub preemption_bound: Option<usize>,
    /// Maximum schedules to explore before giving up with a panic.
    pub max_branches: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: Some(DEFAULT_PREEMPTION_BOUND),
            max_branches: DEFAULT_MAX_ITERATIONS,
        }
    }

    /// Exhaustively explore `f` under every schedule within the preemption
    /// bound. Panics (with the failing schedule's stats) if any execution
    /// panics, deadlocks or livelocks.
    pub fn check(&self, f: impl Fn() + Sync + Send + 'static) {
        let f = Arc::new(f);
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_branches,
                "loom (offline): exceeded {} schedules — shrink the model \
                 or lower the preemption bound",
                self.max_branches
            );
            let exec = Exec::new(prefix.clone());
            let g = Arc::clone(&f);
            exec.start(move || g());
            let decisions = exec.wait_done();
            // Deepest decision with an unexplored, budget-admissible branch.
            let mut next_prefix = None;
            for d in (0..decisions.len()).rev() {
                let dec = &decisions[d];
                for j in dec.chosen + 1..dec.alts.len() {
                    let cost = dec.preempt_before + usize::from(dec.preemptive[j]);
                    if cost <= bound {
                        let mut p: Vec<usize> =
                            decisions[..d].iter().map(|x| x.chosen).collect();
                        p.push(j);
                        next_prefix = Some(p);
                        break;
                    }
                }
                if next_prefix.is_some() {
                    break;
                }
            }
            match next_prefix {
                Some(p) => prefix = p,
                None => break,
            }
        }
        eprintln!("loom (offline): explored {iterations} schedules, all passed");
    }
}

/// Explore `f` with the default bounds. The entry point the tests use:
/// `loom::model(|| { ... })`.
pub fn model(f: impl Fn() + Sync + Send + 'static) {
    Builder::new().check(f)
}
