//! Offline drop-in subset of the [loom](https://crates.io/crates/loom)
//! concurrency model checker.
//!
//! The build container has no crates.io access, so this crate implements the
//! slice of loom's API our `#[cfg(loom)]` shims use, backed by a
//! **preemption-bounded, sequentially-consistent, exhaustive interleaving
//! explorer** (in the spirit of CHESS) rather than loom's C11 weak-memory
//! model:
//!
//! * [`model()`] re-runs the test closure once per explored schedule.
//! * Every atomic access, lock acquisition and condvar operation is a
//!   *scheduling point*; exactly one model thread runs between two points,
//!   so a schedule is a total order over the points — i.e. sequential
//!   consistency. Weak orderings (`Relaxed`, `Acquire`, …) are accepted but
//!   all execute as `SeqCst`: the explorer proves linearizability and
//!   deadlock/lost-wakeup freedom under SC, not the absence of
//!   relaxed-memory reorderings (ThreadSanitizer covers that axis — see the
//!   CI `sanitizers` job).
//! * Exploration is depth-first over scheduler choices with a configurable
//!   **preemption bound** (default 3): schedules that forcibly switch away
//!   from a runnable thread more than the bound are pruned. Voluntary
//!   switches (blocking, [`thread::yield_now`], finishing) are free, so
//!   every schedule a bounded number of preemptions can produce is covered.
//! * Deadlocks (all live threads blocked) and livelocks (a schedule
//!   exceeding the per-execution step cap) panic with a schedule dump, as
//!   does any assertion failure inside a model thread.
//!
//! Model threads are real OS threads run one-at-a-time under a cooperative
//! token protocol (the same handoff discipline as `simnet`'s rank engine),
//! so the code under test runs unmodified — no instrumentation beyond the
//! `loom::sync` / `loom::thread` shims the caller already compiled in.

pub mod model;
pub mod sched;
pub mod sync;
pub mod thread;

pub use model::model;

pub mod hint {
    /// Model-aware spin hint: spinning only makes progress if another
    /// thread runs, so it is a voluntary yield in the model.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}
