//! Model-checked synchronization primitives, mirroring `loom::sync`.
//!
//! Every operation is a scheduling point; the values themselves are held
//! in plain (or `std` atomic) storage, since only one model thread runs at
//! a time. All memory orderings execute as `SeqCst` — see the crate docs.

pub use std::sync::Arc;

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched;

    fn point() {
        let (exec, _) = sched::me();
        exec.yield_point(false);
    }

    /// A SeqCst memory fence is a no-op under the sequentially-consistent
    /// model, but it is still an interleaving point.
    pub fn fence(_order: Ordering) {
        point();
    }

    macro_rules! atomic_type {
        ($name:ident, $std:ty, $val:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                pub fn new(v: $val) -> $name {
                    $name { v: <$std>::new(v) }
                }

                pub fn load(&self, _o: Ordering) -> $val {
                    point();
                    self.v.load(Ordering::SeqCst)
                }

                pub fn store(&self, val: $val, _o: Ordering) {
                    point();
                    self.v.store(val, Ordering::SeqCst)
                }

                pub fn swap(&self, val: $val, _o: Ordering) -> $val {
                    point();
                    self.v.swap(val, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $val,
                    new: $val,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$val, $val> {
                    point();
                    self.v
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                pub fn compare_exchange_weak(
                    &self,
                    cur: $val,
                    new: $val,
                    s: Ordering,
                    f: Ordering,
                ) -> Result<$val, $val> {
                    // The model has no spurious failures.
                    self.compare_exchange(cur, new, s, f)
                }

                pub fn fetch_add(&self, val: $val, _o: Ordering) -> $val {
                    point();
                    self.v.fetch_add(val, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, val: $val, _o: Ordering) -> $val {
                    point();
                    self.v.fetch_sub(val, Ordering::SeqCst)
                }

                pub fn fetch_max(&self, val: $val, _o: Ordering) -> $val {
                    point();
                    self.v.fetch_max(val, Ordering::SeqCst)
                }

                pub fn fetch_min(&self, val: $val, _o: Ordering) -> $val {
                    point();
                    self.v.fetch_min(val, Ordering::SeqCst)
                }

                pub fn into_inner(self) -> $val {
                    self.v.into_inner()
                }
            }
        };
    }

    atomic_type!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_type!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_type!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_type!(AtomicU8, std::sync::atomic::AtomicU8, u8);

    /// `AtomicBool` has no `fetch_add`/`fetch_sub`; written out by hand.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, _o: Ordering) -> bool {
            point();
            self.v.load(Ordering::SeqCst)
        }

        pub fn store(&self, val: bool, _o: Ordering) {
            point();
            self.v.store(val, Ordering::SeqCst)
        }

        pub fn swap(&self, val: bool, _o: Ordering) -> bool {
            point();
            self.v.swap(val, Ordering::SeqCst)
        }

        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            _s: Ordering,
            _f: Ordering,
        ) -> Result<bool, bool> {
            point();
            self.v
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        }
    }
}

use std::cell::UnsafeCell;

use crate::sched;

/// Model-checked mutex. Blocking participates in deadlock detection.
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the model scheduler — a guard
// only exists while its thread owns the model-level lock.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Must be called inside [`crate::model()`] (the lock registers with the
    /// running execution).
    pub fn new(v: T) -> Mutex<T> {
        let (exec, _) = sched::me();
        Mutex {
            id: exec.new_mutex(),
            data: UnsafeCell::new(v),
        }
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let (exec, _) = sched::me();
        exec.acquire_mutex(self.id);
        Ok(MutexGuard { lock: self })
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the model-level lock is held (guard invariant).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above — exclusive model-level ownership.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let (exec, _) = sched::me();
        exec.release_mutex(self.lock.id);
    }
}

/// Model-checked condition variable: a `wait` that a matching `notify`
/// never reaches is reported as a deadlock (the lost-wakeup detector).
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Must be called inside [`crate::model()`].
    pub fn new() -> Condvar {
        let (exec, _) = sched::me();
        Condvar {
            id: exec.new_condvar(),
        }
    }

    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let (exec, _) = sched::me();
        let lock = guard.lock;
        // The model releases and re-acquires the lock itself; skip the
        // guard's Drop release.
        std::mem::forget(guard);
        exec.condvar_wait(self.id, lock.id);
        Ok(MutexGuard { lock })
    }

    pub fn notify_one(&self) {
        let (exec, _) = sched::me();
        exec.condvar_notify(self.id, false);
    }

    pub fn notify_all(&self) {
        let (exec, _) = sched::me();
        exec.condvar_notify(self.id, true);
    }
}
