//! Model-thread spawning, mirroring `loom::thread`.

use std::sync::{Arc, Mutex as StdMutex};

use crate::sched;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawn a model thread. Must be called inside [`crate::model()`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _) = sched::me();
    let result = Arc::new(StdMutex::new(None));
    let r2 = Arc::clone(&result);
    let tid = exec.spawn_model_thread(move || {
        let v = f();
        *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    });
    JoinHandle { tid, result }
}

/// Voluntarily cede the token: every other runnable thread is preferred
/// until one of them has run. The model-aware version of
/// `std::thread::yield_now` (and of a spin-loop hint: spinning only makes
/// progress if somebody else runs).
pub fn yield_now() {
    let (exec, _) = sched::me();
    exec.yield_point(true);
}

impl<T> JoinHandle<T> {
    /// Block until the thread finishes; returns its closure's value.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, _) = sched::me();
        exec.join_thread(self.tid);
        Ok(self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom: joined thread produced no result"))
    }
}
