//! The cooperative scheduler and DFS schedule explorer.
//!
//! One `Exec` is a single execution of the model closure under one
//! schedule. Model threads are real OS threads, but exactly one holds the
//! execution token at any time; every scheduling point (atomic access,
//! lock, condvar op, yield) cedes the token through `Exec::yield_point`,
//! which consults the replay prefix / default policy to pick the next
//! runnable thread. The decision log of a finished execution tells the
//! explorer in [`crate::model()`] which branch to flip next.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Per-execution step cap: a schedule that makes this many scheduling
/// points without finishing is declared a livelock.
const STEP_CAP: usize = 200_000;

/// Unwind payload used to tear model threads down silently when another
/// thread already failed the execution.
pub(crate) struct TearDown;

/// Why a thread cannot run right now.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    /// Runnable (parked at a scheduling point, awaiting the token).
    None,
    /// Waiting for a thread to finish.
    Join(usize),
    /// Waiting for a mutex to be released.
    Mutex(usize),
    /// Waiting on a condvar (moves to `None` on notify; the thread then
    /// re-acquires the mutex itself).
    Condvar(usize),
    /// Done; never runs again.
    Finished,
}

struct ThreadSlot {
    wait: Wait,
    /// Voluntarily ceded the token ([`crate::thread::yield_now`]): not
    /// eligible while any other thread is runnable, and switching away
    /// from it is never charged as a preemption.
    yielded: bool,
}

/// One scheduler decision: the runnable set and what was chosen.
pub(crate) struct Decision {
    /// Runnable thread ids at this point, ascending.
    pub alts: Vec<usize>,
    /// Index into `alts` that was taken.
    pub chosen: usize,
    /// Per-alternative: would taking it have been a preemption (forcibly
    /// switching away from a still-runnable current thread)?
    pub preemptive: Vec<bool>,
    /// Preemptions consumed by the decisions *before* this one.
    pub preempt_before: usize,
}

struct State {
    slots: Vec<ThreadSlot>,
    /// Thread currently holding the execution token.
    active: usize,
    /// Mutex owners (`None` = free), indexed by mutex id.
    mutexes: Vec<Option<usize>>,
    /// Condvar wait sets (FIFO), indexed by condvar id.
    condvars: Vec<Vec<usize>>,
    decisions: Vec<Decision>,
    /// How many leading decisions replay the explorer's prefix.
    cursor: usize,
    preemptions: usize,
    steps: usize,
    /// Execution failed (panic / deadlock / livelock): unwind everyone.
    poison: bool,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    /// Real join handles of every spawned model thread.
    real: Vec<std::thread::JoinHandle<()>>,
    /// Per-thread result of `finish` ordering for joins.
    done_count: usize,
}

/// One execution of the model under one schedule.
pub(crate) struct Exec {
    st: Mutex<State>,
    cv: Condvar,
    /// Replay prefix: decision indices to take before falling back to the
    /// default (non-preemptive) policy.
    prefix: Vec<usize>,
    /// Set once the whole execution is over (all finished or poisoned).
    done: AtomicBool,
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's (execution, thread id), if inside a model.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Exec>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// `current()` that panics outside a model — every `loom::sync` op
/// requires the scheduler.
pub(crate) fn me() -> (Arc<Exec>, usize) {
    current().expect("loom primitives may only be used inside loom::model")
}

impl Exec {
    pub(crate) fn new(prefix: Vec<usize>) -> Arc<Exec> {
        Arc::new(Exec {
            st: Mutex::new(State {
                slots: Vec::new(),
                active: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                decisions: Vec::new(),
                cursor: 0,
                preemptions: 0,
                steps: 0,
                poison: false,
                panic_payload: None,
                real: Vec::new(),
                done_count: 0,
            }),
            cv: Condvar::new(),
            prefix,
            done: AtomicBool::new(false),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new model thread; returns its id. The thread starts
    /// runnable but parked (it must be granted the token before running).
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.slots.push(ThreadSlot {
            wait: Wait::None,
            yielded: false,
        });
        st.slots.len() - 1
    }

    pub(crate) fn push_real_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().real.push(h);
    }

    /// Spawn the model thread running `f` (already wrapped by the caller
    /// with result capture). Registers it and launches the real thread.
    pub(crate) fn spawn_model_thread(
        self: &Arc<Self>,
        f: impl FnOnce() + Send + 'static,
    ) -> usize {
        let tid = self.register_thread();
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                set_current(Some((Arc::clone(&exec), tid)));
                // Wait for the first grant before touching anything.
                if exec.wait_for_token(tid).is_err() {
                    return; // torn down before ever running
                }
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                match r {
                    Ok(()) => exec.finish(tid),
                    Err(payload) => {
                        if payload.downcast_ref::<TearDown>().is_none() {
                            exec.poison_with(payload);
                        }
                        // TearDown: another thread already poisoned; just
                        // exit. `finish` is skipped — poison supersedes.
                    }
                }
                set_current(None);
            })
            .expect("failed to spawn loom model thread");
        self.push_real_handle(handle);
        tid
    }

    /// Block until this thread holds the token. `Err` = torn down.
    fn wait_for_token(&self, tid: usize) -> Result<(), ()> {
        let mut st = self.lock();
        loop {
            if st.poison {
                return Err(());
            }
            if st.active == tid && st.slots[tid].wait == Wait::None {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Unwind the calling model thread because the execution is poisoned.
    fn tear_down(&self) -> ! {
        panic::panic_any(TearDown)
    }

    /// Record a panic payload and wake everyone to unwind.
    pub(crate) fn poison_with(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut st = self.lock();
        if st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.poison = true;
        drop(st);
        self.cv.notify_all();
    }

    /// The scheduling point every shim funnels through: cede the token,
    /// let the policy pick the next runnable thread, and return once this
    /// thread is granted again. `to_wait` describes why the calling thread
    /// cannot continue (or `Wait::None` for an ordinary interleaving
    /// point, where it stays runnable and may well be re-chosen).
    pub(crate) fn yield_point(self: &Arc<Self>, voluntary: bool) {
        self.block_point(Wait::None, voluntary)
    }

    fn block_point(self: &Arc<Self>, to_wait: Wait, voluntary: bool) {
        let (_, tid) = me();
        {
            let mut st = self.lock();
            if st.poison {
                drop(st);
                self.tear_down();
            }
            st.steps += 1;
            if st.steps > STEP_CAP {
                drop(st);
                self.poison_with(Box::new(format!(
                    "loom (offline): livelock — schedule exceeded {STEP_CAP} scheduling points"
                )));
                self.tear_down();
            }
            st.slots[tid].wait = to_wait;
            st.slots[tid].yielded = voluntary;
            self.schedule(&mut st);
        }
        self.cv.notify_all();
        if self.wait_for_token(tid).is_err() {
            self.tear_down();
        }
    }

    /// Pick the next thread to run and record the decision.
    fn schedule(self: &Arc<Self>, st: &mut State) {
        let cur = st.active;
        let cur_runnable =
            st.slots[cur].wait == Wait::None && !st.slots[cur].yielded;
        // Runnable set. A yielded thread is eligible only if nothing else
        // can run (yield means "let somebody else go first").
        let mut alts: Vec<usize> = (0..st.slots.len())
            .filter(|&t| st.slots[t].wait == Wait::None && !st.slots[t].yielded)
            .collect();
        if alts.is_empty() {
            alts = (0..st.slots.len())
                .filter(|&t| st.slots[t].wait == Wait::None)
                .collect();
        }
        if alts.is_empty() {
            if st.slots.iter().all(|s| s.wait == Wait::Finished) {
                // Execution complete; nothing to schedule.
                return;
            }
            let held: Vec<String> = st
                .slots
                .iter()
                .enumerate()
                .map(|(t, s)| format!("thread {t}: {:?}", s.wait))
                .collect();
            st.poison = true;
            if st.panic_payload.is_none() {
                st.panic_payload = Some(Box::new(format!(
                    "loom (offline): deadlock — no runnable thread [{}]",
                    held.join(", ")
                )));
            }
            return;
        }
        // Put the default (non-preemptive) choice at index 0: the explorer
        // only scans alternatives ABOVE the chosen index (the DFS invariant
        // is "everything below `chosen` was explored in earlier siblings"),
        // so the first visit to a decision must choose index 0. The swap is
        // a deterministic function of the runnable set and `cur`, which
        // replay reproduces exactly.
        if let Some(pos) = alts.iter().position(|&t| t == cur) {
            alts.swap(0, pos);
        }
        let preemptive: Vec<bool> = alts
            .iter()
            .map(|&t| cur_runnable && t != cur)
            .collect();
        let chosen = if st.cursor < self.prefix.len() {
            let c = self.prefix[st.cursor];
            assert!(
                c < alts.len(),
                "loom (offline): replay divergence — the model is nondeterministic \
                 outside scheduler control (prefix choice {c} of {} alts)",
                alts.len()
            );
            c
        } else {
            // Default policy: index 0 — stay on the current thread when it
            // is runnable (never a preemption), else the lowest-id
            // runnable thread.
            0
        };
        let preempt_before = st.preemptions;
        if preemptive[chosen] {
            st.preemptions += 1;
        }
        let next = alts[chosen];
        st.decisions.push(Decision {
            alts,
            chosen,
            preemptive,
            preempt_before,
        });
        st.cursor += 1;
        st.active = next;
        // The grantee gets a fresh yield slate; everyone else's yield flag
        // clears once a different thread has actually run.
        for (t, slot) in st.slots.iter_mut().enumerate() {
            if t != next {
                slot.yielded = false;
            }
        }
        st.slots[next].yielded = false;
    }

    /// Model thread `tid` finished its closure.
    fn finish(self: &Arc<Self>, tid: usize) {
        let mut st = self.lock();
        st.slots[tid].wait = Wait::Finished;
        st.done_count += 1;
        // Joiners become runnable.
        for slot in st.slots.iter_mut() {
            if slot.wait == Wait::Join(tid) {
                slot.wait = Wait::None;
            }
        }
        self.schedule(&mut st);
        let all_done = st.slots.iter().all(|s| s.wait == Wait::Finished);
        drop(st);
        if all_done {
            self.done.store(true, Ordering::SeqCst);
        }
        self.cv.notify_all();
    }

    /// Block the caller until model thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, target: usize) {
        loop {
            {
                let st = self.lock();
                if st.poison {
                    drop(st);
                    self.tear_down();
                }
                if st.slots[target].wait == Wait::Finished {
                    return;
                }
            }
            self.block_point(Wait::Join(target), false);
        }
    }

    // ---- mutex / condvar modelling -------------------------------------

    pub(crate) fn new_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(None);
        st.mutexes.len() - 1
    }

    pub(crate) fn new_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(Vec::new());
        st.condvars.len() - 1
    }

    pub(crate) fn acquire_mutex(self: &Arc<Self>, mid: usize) {
        let (_, tid) = me();
        // Acquisition is a scheduling point: others may interleave before
        // we take (or block on) the lock.
        self.yield_point(false);
        loop {
            {
                let mut st = self.lock();
                if st.poison {
                    drop(st);
                    self.tear_down();
                }
                match st.mutexes[mid] {
                    None => {
                        st.mutexes[mid] = Some(tid);
                        return;
                    }
                    Some(owner) => {
                        assert_ne!(owner, tid, "loom: mutex deadlock (relock)");
                    }
                }
            }
            self.block_point(Wait::Mutex(mid), false);
        }
    }

    pub(crate) fn release_mutex(self: &Arc<Self>, mid: usize) {
        let mut st = self.lock();
        let (_, tid) = me();
        debug_assert_eq!(st.mutexes[mid], Some(tid), "unlock by non-owner");
        st.mutexes[mid] = None;
        for slot in st.slots.iter_mut() {
            if slot.wait == Wait::Mutex(mid) {
                slot.wait = Wait::None;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Condvar wait: atomically release the mutex and sleep; on notify,
    /// re-acquire the mutex before returning.
    pub(crate) fn condvar_wait(self: &Arc<Self>, cid: usize, mid: usize) {
        let (_, tid) = me();
        {
            let mut st = self.lock();
            debug_assert_eq!(st.mutexes[mid], Some(tid), "cv wait without the lock");
            st.mutexes[mid] = None;
            for slot in st.slots.iter_mut() {
                if slot.wait == Wait::Mutex(mid) {
                    slot.wait = Wait::None;
                }
            }
            st.condvars[cid].push(tid);
        }
        self.cv.notify_all();
        self.block_point(Wait::Condvar(cid), false);
        // Notified (wait flag cleared by notify): take the lock back.
        self.acquire_mutex(mid);
    }

    pub(crate) fn condvar_notify(self: &Arc<Self>, cid: usize, all: bool) {
        // Notification is a scheduling point too.
        self.yield_point(false);
        let mut st = self.lock();
        let woken: Vec<usize> = if all {
            std::mem::take(&mut st.condvars[cid])
        } else if st.condvars[cid].is_empty() {
            Vec::new()
        } else {
            vec![st.condvars[cid].remove(0)]
        };
        for t in woken {
            if st.slots[t].wait == Wait::Condvar(cid) {
                st.slots[t].wait = Wait::None;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    // ---- explorer interface --------------------------------------------

    /// Wait for the execution to end; re-raise any recorded panic.
    /// Returns the decision log for prefix computation.
    pub(crate) fn wait_done(self: &Arc<Self>) -> Vec<Decision> {
        {
            let mut st = self.lock();
            loop {
                let all_done = st.slots.iter().all(|s| s.wait == Wait::Finished);
                if st.poison || (all_done && !st.slots.is_empty()) {
                    break;
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Join the real threads so nothing outlives the execution.
        let handles = {
            let mut st = self.lock();
            std::mem::take(&mut st.real)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.lock();
        if let Some(payload) = st.panic_payload.take() {
            let n = st.decisions.len();
            let p = st.preemptions;
            drop(st);
            eprintln!(
                "loom (offline): failing schedule — {n} scheduling decisions, {p} preemptions"
            );
            panic::resume_unwind(payload);
        }
        std::mem::take(&mut st.decisions)
    }

    /// Launch the root model thread (thread 0). `State::new` initializes
    /// `active` to 0, so the root owns the token from the outset — nothing
    /// may write `active` after spawning except `schedule` itself (a late
    /// write here would race the root ceding the token and double-grant).
    pub(crate) fn start(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) {
        let tid = self.spawn_model_thread(f);
        debug_assert_eq!(tid, 0);
        self.cv.notify_all();
    }
}
