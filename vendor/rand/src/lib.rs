//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm the real crate
//! uses on 64-bit targets), the [`SeedableRng`]/[`RngCore`]/[`Rng`]
//! traits, and uniform range sampling for the integer and float types
//! the simulator draws from.
//!
//! Everything here is fully deterministic from the seed — there is no
//! entropy source on purpose: the whole repository is built around
//! replayable simulation (see `simnet::fault`).

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state, same
/// as the real `rand` crate's `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in the
/// real crate).
pub trait Standard: Sized {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::standard_from(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Small state, fast, and (crucially here)
    /// bit-reproducible from its seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_identical() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
